"""Tests for the ISP workload generator."""

import pytest

from repro.util.errors import ConfigError
from repro.workloads.isp import (
    ISP_RESOLVER_IPS,
    PUBLIC_RESOLVER_IPS,
    IspWorkload,
    LagModel,
    large_isp,
    small_isp,
)


class TestDeterminism:
    def test_dns_stream_reproducible(self, tiny_workload):
        a = list(tiny_workload.dns_records())
        b = list(tiny_workload.dns_records())
        assert a == b

    def test_flow_stream_reproducible(self, tiny_workload):
        a = list(tiny_workload.flow_records())
        b = list(tiny_workload.flow_records())
        assert a == b

    def test_seed_changes_streams(self, tiny_universe, tiny_hosting):
        w1 = IspWorkload(tiny_universe, tiny_hosting, seed=1, duration=600.0,
                         resolution_rate=1.0, warmup=0.0)
        w2 = IspWorkload(tiny_universe, tiny_hosting, seed=2, duration=600.0,
                         resolution_rate=1.0, warmup=0.0)
        assert list(w1.dns_records()) != list(w2.dns_records())


class TestOrdering:
    def test_dns_records_time_ordered(self, tiny_workload):
        records = list(tiny_workload.dns_records())
        assert all(a.ts <= b.ts for a, b in zip(records, records[1:]))

    def test_flow_records_time_ordered(self, tiny_workload):
        flows = list(tiny_workload.flow_records())
        assert all(a.ts <= b.ts for a, b in zip(flows, flows[1:]))

    def test_flows_start_at_t0(self, tiny_workload):
        flows = list(tiny_workload.flow_records())
        assert min(f.ts for f in flows) >= tiny_workload.t0

    def test_dns_starts_in_warmup(self, tiny_workload):
        records = list(tiny_workload.dns_records())
        assert min(r.ts for r in records) < tiny_workload.t0

    def test_everything_ends_by_duration(self, tiny_workload):
        end = tiny_workload.t0 + tiny_workload.duration
        assert max(f.ts for f in tiny_workload.flow_records()) < end
        assert max(r.ts for r in tiny_workload.dns_records()) < end


class TestComposition:
    def test_public_resolver_flows_present(self, tiny_workload):
        flows = [f for f in tiny_workload.flow_records() if f.dst_port in (53, 853)]
        assert flows
        publics = [f for f in flows if str(f.dst_ip) in PUBLIC_RESOLVER_IPS]
        isps = [f for f in flows if str(f.dst_ip) in ISP_RESOLVER_IPS]
        assert isps and len(isps) > len(publics)

    def test_background_sources_disjoint_from_pools(self, tiny_workload):
        backgrounds = [
            f for f in tiny_workload.flow_records()
            if str(f.src_ip).startswith("172.16.")
        ]
        assert backgrounds

    def test_clients_in_cgnat_space(self, tiny_workload):
        flows = [f for f in tiny_workload.flow_records() if f.src_port == 443]
        assert flows
        assert all(str(f.dst_ip).startswith("100.64.") for f in flows)

    def test_invisible_resolutions_have_flows_but_no_dns(self, tiny_universe, tiny_hosting):
        w = IspWorkload(tiny_universe, tiny_hosting, seed=9, duration=1200.0,
                        resolution_rate=2.0, warmup=0.0, public_resolver_fraction=0.5)
        resolutions = list(w._resolutions())
        invisible = [r for r in resolutions if not r.visible]
        assert invisible
        dns_count = sum(1 for _ in w.dns_records())
        assert dns_count < sum(len(r.records()) for r in resolutions)


class TestSharding:
    def test_dns_shards_partition_stream(self, tiny_workload):
        shards = tiny_workload.dns_record_streams(3)
        total = sum(1 for shard in shards for _ in shard)
        assert total == sum(1 for _ in tiny_workload.dns_records())

    def test_flow_shards_keyed_by_src_ip(self, tiny_workload):
        shards = tiny_workload.flow_record_streams(2)
        seen = [set(), set()]
        for idx, shard in enumerate(shards):
            for flow in shard:
                seen[idx].add(str(flow.src_ip))
        assert not (seen[0] & seen[1])

    def test_invalid_shard_count(self, tiny_workload):
        with pytest.raises(ConfigError):
            tiny_workload.dns_record_streams(0)


class TestLagModel:
    def test_immediate_lags_short(self):
        import random

        model = LagModel(immediate_fraction=1.0, cached_fraction=0.0)
        rng = random.Random(0)
        assert all(model.sample(rng, 300) <= 600 for _ in range(100))

    def test_stale_lags_beyond_ttl(self):
        import random

        model = LagModel(immediate_fraction=0.0, cached_fraction=0.0)
        rng = random.Random(0)
        for _ in range(100):
            assert model.sample(rng, 300) >= 300

    def test_stale_capped(self):
        import random

        model = LagModel(immediate_fraction=0.0, cached_fraction=0.0)
        rng = random.Random(0)
        assert all(model.sample(rng, 300) <= model.stale_cap for _ in range(500))

    def test_origin_profile_more_stale(self):
        import random

        model = LagModel()
        rng = random.Random(1)
        normal = sum(model.sample(rng, 600) for _ in range(2000)) / 2000
        rng = random.Random(1)
        origin = sum(model.sample(rng, 600, origin=True) for _ in range(2000)) / 2000
        assert origin > normal


class TestPresets:
    def test_large_isp_builds(self):
        w = large_isp(seed=1, duration=600.0, n_benign=100)
        assert w.cost_params.rate_scale > 1000
        assert w.cost_params.dns_rate_scale > 1000
        assert w.worker_count == 60

    def test_small_isp_builds(self):
        w = small_isp(seed=1, duration=600.0, n_benign=100)
        assert w.worker_count == 8
        # flow:dns ratio near 1.2 at the small ISP vs 13 at the large one.
        assert w.cost_params.rate_scale < large_isp(seed=1, duration=600.0, n_benign=100).cost_params.rate_scale

    def test_overrides_respected(self):
        w = large_isp(seed=1, duration=600.0, n_benign=100, background_byte_fraction=0.3)
        assert w.background_byte_fraction == 0.3

    def test_validation(self, tiny_universe, tiny_hosting):
        with pytest.raises(ConfigError):
            IspWorkload(tiny_universe, tiny_hosting, seed=0, duration=0, resolution_rate=1)
        with pytest.raises(ConfigError):
            IspWorkload(tiny_universe, tiny_hosting, seed=0, duration=10, resolution_rate=0)
        with pytest.raises(ConfigError):
            IspWorkload(tiny_universe, tiny_hosting, seed=0, duration=10,
                        resolution_rate=1, background_byte_fraction=1.0)


class TestByteComposition:
    def test_background_byte_share_near_target(self, tiny_universe, tiny_hosting):
        w = IspWorkload(tiny_universe, tiny_hosting, seed=5, duration=3600.0,
                        resolution_rate=2.0, warmup=1800.0, background_byte_fraction=0.2)
        bg = 0
        total = 0
        for flow in w.flow_records():
            total += flow.bytes_
            if str(flow.src_ip).startswith("172.16."):
                bg += flow.bytes_
        assert 0.08 < bg / total < 0.40  # noisy at this scale, but present
