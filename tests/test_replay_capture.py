"""Tests for the capture format and replay sources.

The :class:`CaptureDecoder` suite mirrors ``tests/test_dns_tcp.py``'s
:class:`TcpFrameDecoder` contract — randomized chunk boundaries, 1-byte
feeds, truncated tails that surface *after* every cleanly-framed item —
because the capture reader makes the same promise: nothing the transport
or filesystem does to the byte stream may change what comes out.
"""

import io
import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.replay.capture import (
    LANE_DNS,
    LANE_FLOW,
    LANES,
    MAGIC,
    MAX_FRAME_PAYLOAD,
    CaptureDecoder,
    CaptureFrame,
    CaptureWriter,
    encode_frame,
    load_capture,
    read_capture,
    write_capture,
)
from repro.replay.source import ReplaySource, replay_sources
from repro.util.errors import ConfigError, ParseError

#: Finite doubles only: the !d encoding round-trips every finite float
#: exactly, and a NaN timestamp would break frame equality.
_TS = st.floats(allow_nan=False, allow_infinity=False, width=64)

_FRAMES = st.lists(
    st.builds(
        CaptureFrame,
        ts=_TS,
        lane=st.sampled_from(LANES),
        payload=st.binary(min_size=0, max_size=120),
    ),
    min_size=1,
    max_size=12,
)


def _stream(frames):
    return MAGIC + b"".join(encode_frame(f) for f in frames)


class TestFrameValidation:
    def test_unknown_lane_rejected(self):
        with pytest.raises(ParseError):
            CaptureFrame(1.0, "carrier-pigeon", b"x")

    def test_oversized_payload_rejected(self):
        with pytest.raises(ParseError):
            CaptureFrame(1.0, LANE_FLOW, b"x" * (MAX_FRAME_PAYLOAD + 1))


class TestDecoder:
    def test_whole_stream_in_one_chunk(self):
        frames = [
            CaptureFrame(1.5, LANE_FLOW, b"datagram"),
            CaptureFrame(2.5, LANE_DNS, b"message"),
        ]
        decoder = CaptureDecoder()
        assert decoder.feed(_stream(frames)) == frames
        assert decoder.frames_out == 2
        assert decoder.pending_bytes == 0
        decoder.close()

    def test_split_inside_magic(self):
        frames = [CaptureFrame(0.0, LANE_DNS, b"m")]
        stream = _stream(frames)
        decoder = CaptureDecoder()
        assert decoder.feed(stream[:3]) == []
        assert decoder.feed(stream[3:]) == frames

    def test_bad_magic_raises_immediately(self):
        decoder = CaptureDecoder()
        with pytest.raises(ParseError, match="magic"):
            decoder.feed(b"NOTACAP\x01rest")

    def test_bad_magic_detected_from_first_divergent_byte(self):
        """A wrong prefix fails as soon as it diverges — the decoder does
        not wait for all eight magic bytes."""
        decoder = CaptureDecoder()
        with pytest.raises(ParseError, match="magic"):
            decoder.feed(b"X")

    def test_unknown_lane_tag_is_corruption(self):
        decoder = CaptureDecoder()
        decoder.feed(MAGIC)
        with pytest.raises(ParseError, match="lane"):
            decoder.feed(b"\x7f" + b"\x00" * 12)

    def test_oversized_length_claim_is_corruption(self):
        decoder = CaptureDecoder()
        decoder.feed(MAGIC)
        bad = bytes([1]) + b"\x00" * 8 + (MAX_FRAME_PAYLOAD + 1).to_bytes(4, "big")
        with pytest.raises(ParseError, match="cap"):
            decoder.feed(bad)

    def test_frames_before_corruption_survive(self):
        """[valid frame][corrupt tag] in one chunk hands back the valid
        frame; the raise is deferred to the next feed or close."""
        good = CaptureFrame(3.0, LANE_FLOW, b"ok")
        decoder = CaptureDecoder()
        out = decoder.feed(_stream([good]) + b"\x7f garbage....")
        assert out == [good]
        with pytest.raises(ParseError):
            decoder.feed(b"")
        with pytest.raises(ParseError):
            decoder.close()

    def test_empty_close_raises(self):
        with pytest.raises(ParseError, match="empty"):
            CaptureDecoder().close()

    def test_close_inside_magic_raises(self):
        decoder = CaptureDecoder()
        decoder.feed(MAGIC[:4])
        with pytest.raises(ParseError, match="magic"):
            decoder.close()


class TestZeroLengthPayloads:
    """Zero-length payloads are legal frames (truncation faults produce
    them); the codec and the replay sources must carry them losslessly."""

    def test_explicit_round_trip(self, tmp_path):
        frames = [
            CaptureFrame(1.0, LANE_DNS, b""),
            CaptureFrame(2.0, LANE_FLOW, b""),
            CaptureFrame(3.0, LANE_FLOW, b"data"),
        ]
        path = str(tmp_path / "empty.fdc")
        write_capture(path, frames)
        assert load_capture(path) == frames
        dns_sources, flow_sources = replay_sources(frames)
        assert list(dns_sources[0]) == [(1.0, b"")]
        assert list(flow_sources[0]) == [b"", b"data"]

    @given(
        frames=_FRAMES,
        empties=st.lists(
            st.tuples(_TS, st.sampled_from(LANES)), min_size=1, max_size=4
        ),
        cuts=st.lists(st.integers(0, 2 ** 12), max_size=12),
    )
    @settings(max_examples=80, deadline=None)
    def test_decoder_handles_guaranteed_empties_under_splits(
        self, frames, empties, cuts
    ):
        frames = list(frames) + [
            CaptureFrame(ts, lane, b"") for ts, lane in empties
        ]
        stream = _stream(frames)
        offsets = sorted({min(c, len(stream)) for c in cuts} | {0, len(stream)})
        decoder = CaptureDecoder()
        out = []
        for start, end in zip(offsets, offsets[1:]):
            out.extend(decoder.feed(stream[start:end]))
        decoder.close()
        assert out == frames
        assert decoder.frames_out == len(frames)


class TestDecoderProperty:
    @given(frames=_FRAMES, cuts=st.lists(st.integers(0, 2 ** 16), max_size=24))
    @settings(max_examples=120, deadline=None)
    def test_arbitrary_split_offsets(self, frames, cuts):
        """Reassembly is exact under any chunking — mid-magic, mid-header,
        mid-payload, anything."""
        stream = _stream(frames)
        offsets = sorted({min(c, len(stream)) for c in cuts} | {0, len(stream)})
        decoder = CaptureDecoder()
        out = []
        for start, end in zip(offsets, offsets[1:]):
            out.extend(decoder.feed(stream[start:end]))
        decoder.close()
        assert out == frames
        assert decoder.frames_out == len(frames)
        assert decoder.pending_bytes == 0
        assert decoder.bytes_in == len(stream)

    @given(frames=_FRAMES)
    @settings(max_examples=40, deadline=None)
    def test_one_byte_feeds(self, frames):
        stream = _stream(frames)
        decoder = CaptureDecoder()
        out = []
        for i in range(len(stream)):
            out.extend(decoder.feed(stream[i : i + 1]))
        decoder.close()
        assert out == frames

    @given(frames=_FRAMES, trunc=st.integers(min_value=1, max_value=2 ** 12))
    @settings(max_examples=60, deadline=None)
    def test_truncated_tail_detected_without_losing_framed_items(
        self, frames, trunc
    ):
        """Cut strictly inside the final frame: every earlier frame still
        comes out of feed(); only close() raises."""
        stream = _stream(frames)
        last_frame = 13 + len(frames[-1].payload)
        trunc = 1 + (trunc - 1) % (last_frame - 1)
        decoder = CaptureDecoder()
        out = decoder.feed(stream[: len(stream) - trunc])
        assert out == frames[:-1]
        with pytest.raises(ParseError):
            decoder.close()

    @given(frames=_FRAMES)
    @settings(max_examples=40, deadline=None)
    def test_file_round_trip(self, frames, tmp_path_factory):
        path = str(tmp_path_factory.mktemp("cap") / "roundtrip.fdc")
        assert write_capture(path, frames) == len(frames)
        assert load_capture(path) == frames


class TestReadCapture:
    def test_truncated_file_yields_clean_frames_then_raises(self, tmp_path):
        frames = [
            CaptureFrame(1.0, LANE_FLOW, b"first"),
            CaptureFrame(2.0, LANE_DNS, b"second"),
            CaptureFrame(3.0, LANE_FLOW, b"lost-tail"),
        ]
        path = tmp_path / "trunc.fdc"
        path.write_bytes(_stream(frames)[:-4])
        reader = read_capture(str(path), chunk_size=7)
        assert next(reader) == frames[0]
        assert next(reader) == frames[1]
        with pytest.raises(ParseError):
            next(reader)

    def test_not_a_capture_file(self, tmp_path):
        path = tmp_path / "nope.fdc"
        path.write_bytes(b"definitely not a capture")
        with pytest.raises(ParseError, match="magic"):
            list(read_capture(str(path)))


class TestCaptureWriter:
    def test_path_target_round_trip(self, tmp_path):
        path = str(tmp_path / "w.fdc")
        with CaptureWriter(path) as writer:
            writer.record_flow(b"dgram", ts=1.0)
            writer.record_dns(b"msg", ts=2.0)
        assert writer.frames_written == 2
        assert load_capture(path) == [
            CaptureFrame(1.0, LANE_FLOW, b"dgram"),
            CaptureFrame(2.0, LANE_DNS, b"msg"),
        ]

    def test_file_object_target_left_open(self):
        sink = io.BytesIO()
        writer = CaptureWriter(sink)
        writer.record_flow(b"x", ts=0.5)
        writer.close()
        assert not sink.closed
        decoder = CaptureDecoder()
        frames = decoder.feed(sink.getvalue())
        decoder.close()
        assert frames == [CaptureFrame(0.5, LANE_FLOW, b"x")]

    def test_clock_stamp_when_ts_omitted(self):
        ticks = iter([10.0, 11.5])

        class FakeClock:
            def now(self):
                return next(ticks)

        sink = io.BytesIO()
        writer = CaptureWriter(sink, clock=FakeClock())
        writer.record_flow(b"a")
        writer.record_dns(b"b")
        decoder = CaptureDecoder()
        frames = decoder.feed(sink.getvalue())
        assert [f.ts for f in frames] == [10.0, 11.5]

    def test_path_target_opens_lazily(self, tmp_path):
        """A path target must not be touched until the first frame (or an
        explicit ensure_open) — a session that dies before receiving
        anything leaves prior data at that path intact."""
        path = tmp_path / "precious.fdc"
        path.write_bytes(b"prior contents")
        writer = CaptureWriter(str(path))
        writer.close()
        assert path.read_bytes() == b"prior contents"

    def test_ensure_open_materializes_valid_empty_capture(self, tmp_path):
        path = str(tmp_path / "empty.fdc")
        writer = CaptureWriter(path)
        writer.ensure_open()
        writer.close()
        assert load_capture(path) == []

    def test_record_after_close_is_noop(self, tmp_path):
        path = str(tmp_path / "closed.fdc")
        writer = CaptureWriter(path)
        writer.record_flow(b"kept", ts=1.0)
        writer.close()
        writer.record_flow(b"dropped", ts=2.0)
        writer.close()  # double-close is fine too
        assert [f.payload for f in load_capture(path)] == [b"kept"]

    def test_concurrent_writers_interleave_whole_frames(self, tmp_path):
        """Two threads tee into one writer (the threaded engine's shape:
        UDP iterator thread + a DNS tap); every frame must land intact."""
        path = str(tmp_path / "mt.fdc")
        writer = CaptureWriter(path)

        def pump(lane, payload):
            for i in range(200):
                writer.record(lane, payload + i.to_bytes(2, "big"))

        threads = [
            threading.Thread(target=pump, args=(LANE_FLOW, b"flow")),
            threading.Thread(target=pump, args=(LANE_DNS, b"dns")),
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        writer.close()
        frames = load_capture(path)
        assert len(frames) == 400
        by_lane = {LANE_FLOW: [], LANE_DNS: []}
        for frame in frames:
            by_lane[frame.lane].append(frame.payload)
        # Per-lane order is each thread's program order.
        assert by_lane[LANE_FLOW] == [b"flow" + i.to_bytes(2, "big") for i in range(200)]
        assert by_lane[LANE_DNS] == [b"dns" + i.to_bytes(2, "big") for i in range(200)]


class TestReplaySource:
    FRAMES = [
        CaptureFrame(1.0, LANE_DNS, b"d0"),
        CaptureFrame(1.5, LANE_FLOW, b"f0"),
        CaptureFrame(2.0, LANE_DNS, b"d1"),
        CaptureFrame(4.0, LANE_FLOW, b"f1"),
    ]

    def test_lane_filtering_and_item_shapes(self):
        dns = list(ReplaySource(self.FRAMES, LANE_DNS))
        flow = list(ReplaySource(self.FRAMES, LANE_FLOW))
        assert dns == [(1.0, b"d0"), (2.0, b"d1")]
        assert flow == [b"f0", b"f1"]

    def test_reiteration_and_counter(self):
        source = ReplaySource(self.FRAMES, LANE_FLOW)
        assert len(list(source)) == 2
        assert source.items_replayed == 2
        assert len(list(source)) == 2  # list re-iterates

    def test_max_speed_never_sleeps(self):
        sleeps = []
        source = ReplaySource(self.FRAMES, LANE_FLOW, sleep=sleeps.append)
        list(source)
        assert sleeps == []

    def test_realtime_sleeps_out_recorded_gaps(self):
        sleeps = []
        source = ReplaySource(
            self.FRAMES, LANE_FLOW, realtime=True, sleep=sleeps.append
        )
        list(source)
        # First item yields immediately; then the 1.5→4.0 gap.
        assert sleeps == [2.5]

    def test_realtime_speed_scales_gaps(self):
        sleeps = []
        source = ReplaySource(
            self.FRAMES, LANE_FLOW, realtime=True, speed=2.0, sleep=sleeps.append
        )
        list(source)
        assert sleeps == [1.25]

    def test_realtime_negative_gap_clamped(self):
        """Mixed-clock captures can interleave non-monotonic stamps; a
        negative gap means 'no wait', never a negative sleep."""
        frames = [
            CaptureFrame(5.0, LANE_FLOW, b"late"),
            CaptureFrame(1.0, LANE_FLOW, b"early"),
            CaptureFrame(1.0, LANE_FLOW, b"same"),
        ]
        sleeps = []
        list(ReplaySource(frames, LANE_FLOW, realtime=True, sleep=sleeps.append))
        assert sleeps == []

    def test_unknown_lane_rejected(self):
        with pytest.raises(ConfigError):
            ReplaySource(self.FRAMES, "telepathy")

    def test_bad_speed_rejected(self):
        with pytest.raises(ConfigError):
            ReplaySource(self.FRAMES, LANE_FLOW, speed=0.0)

    def test_replay_sources_covers_both_lanes(self, tmp_path):
        path = str(tmp_path / "both.fdc")
        write_capture(path, self.FRAMES)
        (dns_sources, flow_sources) = replay_sources(path)
        assert [list(s) for s in dns_sources] == [[(1.0, b"d0"), (2.0, b"d1")]]
        assert [list(s) for s in flow_sources] == [[b"f0", b"f1"]]

    def test_replay_sources_materializes_one_shot_iterators(self):
        """Two lanes iterate independently; a shared generator must not
        be race-split between them (each lane would silently see only
        the frames the other skipped)."""
        (dns_sources, flow_sources) = replay_sources(iter(self.FRAMES))
        assert list(dns_sources[0]) == [(1.0, b"d0"), (2.0, b"d1")]
        assert list(flow_sources[0]) == [b"f0", b"f1"]
