"""Tests for the TTL model, diurnal pattern, and malicious-name synthesis."""

import random

import pytest

from repro.dns.rr import RRType
from repro.dns.validation import is_valid_domain, offending_characters
from repro.util.errors import ConfigError
from repro.workloads.diurnal import SECONDS_PER_DAY, DiurnalPattern, FlatPattern
from repro.workloads.malicious import (
    PAPER_DBL_COUNTS_PER_MILLION,
    build_abuse_population,
    botnet_name,
    malformed_name,
    phish_name,
    spam_name,
)
from repro.workloads.ttl_model import TtlModel


class TestTtlModel:
    """The Figure 8 anchors must hold on the model itself and on samples."""

    def test_anchor_99pct_a_below_3600(self):
        model = TtlModel()
        assert model.fraction_below(RRType.A, 3599) >= 0.99

    def test_anchor_99pct_cname_below_7200(self):
        model = TtlModel()
        assert model.fraction_below(RRType.CNAME, 7199) >= 0.99

    def test_anchor_70pct_below_300(self):
        model = TtlModel()
        assert model.fraction_below(RRType.A, 300) >= 0.70

    def test_cname_ttls_longer_than_address(self):
        model = TtlModel()
        assert model.fraction_below(RRType.CNAME, 300) < model.fraction_below(RRType.A, 300)

    def test_sampling_matches_model(self):
        model = TtlModel()
        rng = random.Random(1)
        samples = [model.sample(rng, RRType.A) for _ in range(20000)]
        below_300 = sum(1 for s in samples if s <= 300) / len(samples)
        assert abs(below_300 - model.fraction_below(RRType.A, 300)) < 0.02

    def test_rejects_unnormalized_weights(self):
        with pytest.raises(ConfigError):
            TtlModel(address_weights=((60, 0.5),))

    def test_aaaa_uses_address_table(self):
        from repro.workloads.ttl_model import ADDRESS_TTL_WEIGHTS

        model = TtlModel()
        rng = random.Random(2)
        address_values = {v for v, _ in ADDRESS_TTL_WEIGHTS}
        for _ in range(100):
            assert model.sample(rng, RRType.AAAA) in address_values


class TestDiurnalPattern:
    def test_mean_is_about_one(self):
        pattern = DiurnalPattern()
        factors = [pattern.factor(t) for t in range(0, int(SECONDS_PER_DAY), 600)]
        assert abs(sum(factors) / len(factors) - 1.0) < 0.02

    def test_peak_in_evening(self):
        pattern = DiurnalPattern(peak_hour=21.0)
        evening = pattern.factor(21 * 3600)
        night = pattern.factor(4 * 3600)
        assert evening > 1.2 * night

    def test_period_is_one_day(self):
        pattern = DiurnalPattern()
        assert pattern.factor(3600.0) == pytest.approx(pattern.factor(3600.0 + SECONDS_PER_DAY))

    def test_never_non_positive(self):
        pattern = DiurnalPattern(amplitude=0.9)
        assert min(pattern.factor(t) for t in range(0, 86400, 300)) > 0.0

    def test_rate_at(self):
        pattern = FlatPattern()
        assert pattern.rate_at(100.0, 1234.0) == 100.0

    def test_flat_pattern_constant(self):
        pattern = FlatPattern()
        assert pattern.factor(0) == pattern.factor(40000) == 1.0

    def test_amplitude_validation(self):
        with pytest.raises(ValueError):
            DiurnalPattern(amplitude=1.5)


class TestMaliciousNames:
    def test_category_builders_produce_plausible_names(self):
        rng = random.Random(3)
        assert "." in spam_name(rng)
        assert "." in botnet_name(rng)
        assert phish_name(rng).count(".") >= 2

    def test_malformed_names_actually_malformed(self):
        rng = random.Random(4)
        for _ in range(200):
            assert not is_valid_domain(malformed_name(rng))

    def test_underscore_share_near_paper_value(self):
        rng = random.Random(5)
        names = [malformed_name(rng) for _ in range(3000)]
        with_underscore = sum(1 for n in names if "_" in offending_characters(n))
        assert 0.82 < with_underscore / len(names) < 0.92

    def test_population_scales_with_universe(self):
        rng = random.Random(6)
        pop = build_abuse_population(rng, benign_universe_size=1_000_000)
        counts = {cat: len(names) for cat, names in pop.by_category.items()}
        for category, expected in PAPER_DBL_COUNTS_PER_MILLION.items():
            assert abs(counts[category] - expected) <= 1
        # 666k / 39M ≈ 1.7% malformed
        assert abs(counts["mal-formatted"] - 17077) < 100

    def test_small_universe_gets_minimums(self):
        rng = random.Random(7)
        pop = build_abuse_population(rng, benign_universe_size=100)
        for category in PAPER_DBL_COUNTS_PER_MILLION:
            assert len(pop.by_category[category]) >= 3

    def test_category_of(self):
        rng = random.Random(8)
        pop = build_abuse_population(rng, benign_universe_size=1000)
        some_spam = pop.by_category["spam"][0]
        assert pop.category_of(some_spam) == "spam"
        assert pop.category_of("innocent.example.com") == "benign"

    def test_all_names_unique(self):
        rng = random.Random(9)
        pop = build_abuse_population(rng, benign_universe_size=10000)
        names = pop.all_names()
        assert len(names) == len(set(names))
