"""Integration tests: workload → engine → analysis, and headline anchors.

These run small simulated deployments and assert the paper's *qualitative*
anchors (orderings, directions). The benchmark harness asserts the
quantitative ones on longer horizons.
"""

import pytest

from engine_gates import gated_flows

from repro.analysis import (
    ResultRecorder,
    ServiceBytesCollector,
    estimate_coverage,
    names_per_ip,
    run_variant,
)
from repro.analysis.invalid_domains import analyze_invalid_domains
from repro.analysis.spamdbl import DomainBlockList, analyze_abuse_traffic
from repro.bgp.correlate import correlate_with_bgp
from repro.bgp.rib import Rib
from repro.core.config import FlowDNSConfig
from repro.core.engine import ThreadedEngine
from repro.core.simulation import SimulationEngine
from repro.core.variants import Variant
from repro.workloads.isp import large_isp
from repro.workloads.pcaplike import two_site_capture


@pytest.fixture(scope="module")
def short_run():
    """One 3-hour large-ISP replay shared by several assertions."""
    workload = large_isp(seed=13, duration=3 * 3600.0, n_benign=600)
    collector = ServiceBytesCollector()
    run = run_variant(workload, Variant.MAIN, sample_interval=1800.0, on_result=collector)
    return workload, run.report, collector


class TestHeadlineBehaviour:
    def test_correlation_rate_in_paper_band(self, short_run):
        _w, report, _c = short_run
        assert 0.76 <= report.correlation_rate <= 0.88

    def test_no_stream_loss(self, short_run):
        _w, report, _c = short_run
        assert report.overall_loss_rate < 0.001

    def test_write_delay_under_45s(self, short_run):
        _w, report, _c = short_run
        assert report.max_write_delay <= 45.0

    def test_chain_lengths_bounded_by_loop_limit(self, short_run):
        _w, report, _c = short_run
        # chain = 1 IP-NAME hit + up to 6 CNAME hops (+1 defensive slack).
        assert max(report.chain_lengths) <= 1 + FlowDNSConfig().cname_loop_limit

    def test_most_chains_short(self, short_run):
        _w, report, _c = short_run
        total = sum(report.chain_lengths.values())
        within_6 = sum(c for length, c in report.chain_lengths.items() if length <= 6)
        assert within_6 / total > 0.99

    def test_streaming_service_dominates_bytes(self, short_run):
        _w, _report, collector = short_run
        top = max(collector.bytes_by_service, key=collector.bytes_by_service.get)
        assert top in ("s1-streaming.tv", "s2-streaming.tv")


class TestVariantOrdering:
    """Figure 7's ordering on a shared 4-hour workload."""

    @pytest.fixture(scope="class")
    def rates(self):
        out = {}
        for variant in (Variant.MAIN, Variant.NO_CLEAR_UP, Variant.NO_ROTATION, Variant.NO_LONG):
            workload = large_isp(seed=21, duration=4 * 3600.0, n_benign=600)
            out[variant] = run_variant(workload, variant).report
        return out

    def test_no_clear_up_at_least_main(self, rates):
        assert rates[Variant.NO_CLEAR_UP].correlation_rate >= rates[Variant.MAIN].correlation_rate - 0.002

    def test_main_beats_no_rotation(self, rates):
        assert rates[Variant.MAIN].correlation_rate > rates[Variant.NO_ROTATION].correlation_rate

    def test_main_beats_no_long(self, rates):
        assert rates[Variant.MAIN].correlation_rate >= rates[Variant.NO_LONG].correlation_rate

    def test_no_rotation_lowest(self, rates):
        others = [rates[v].correlation_rate for v in (Variant.MAIN, Variant.NO_CLEAR_UP, Variant.NO_LONG)]
        assert rates[Variant.NO_ROTATION].correlation_rate <= min(others) + 1e-9

    def test_memory_orderings(self, rates):
        final_mem = {v: r.samples[-1].memory_bytes for v, r in rates.items()}
        assert final_mem[Variant.NO_CLEAR_UP] > final_mem[Variant.MAIN]
        assert final_mem[Variant.NO_ROTATION] < final_mem[Variant.MAIN]


class TestAccuracyExperiment:
    """Section 4: 100 % for distinct IPs, 50 % for a shared IP."""

    def _run(self, same_ip):
        capture = two_site_capture(same_ip=same_ip, seed=5)
        recorder = ResultRecorder()
        engine = SimulationEngine(FlowDNSConfig(), on_result=recorder)
        engine.run(capture.dns_records, capture.flow_records)
        predicted = [r.service or "" for r in recorder.results]
        return capture.accuracy_of(predicted)

    def test_different_ips_perfect(self):
        assert self._run(same_ip=False) == 1.0

    def test_same_ip_half(self):
        accuracy = self._run(same_ip=True)
        assert 0.3 < accuracy < 0.7  # byte-weighted ≈ 50 %


class TestCoverageIntegration:
    def test_coverage_near_95pct(self):
        workload = large_isp(seed=17, duration=3600.0, n_benign=300)
        report = estimate_coverage(workload.flow_records())
        assert 0.90 <= report.coverage <= 0.99
        assert report.dns_flows > 100


class TestNamesPerIpIntegration:
    def test_single_name_fraction_near_88pct(self):
        workload = large_isp(seed=19, duration=2400.0, n_benign=2000)
        report = names_per_ip(workload.dns_records(), window=300.0, t_start=0.0)
        assert 0.80 <= report.single_name_fraction <= 0.96

    def test_multi_ip_names_near_35pct(self):
        workload = large_isp(seed=19, duration=2400.0, n_benign=2000)
        report = names_per_ip(workload.dns_records(), window=300.0, t_start=0.0)
        assert 0.25 <= report.multi_ip_name_fraction <= 0.48


class TestAbuseIntegration:
    def test_abuse_traffic_share_small_and_nonzero(self, short_run):
        workload, _report, collector = short_run
        dbl = DomainBlockList.from_categories(workload.universe.abuse.by_category)
        report = analyze_abuse_traffic(collector.bytes_by_service, dbl)
        assert report.suspicious_names > 0
        assert 0.0 < report.abuse_byte_share() < 0.02

    def test_invalid_domains_found(self, short_run):
        workload = large_isp(seed=23, duration=3600.0, n_benign=600)
        recorder = ResultRecorder()
        run_variant(workload, Variant.MAIN, on_result=recorder)
        report = analyze_invalid_domains(recorder.results)
        assert report.invalid_names > 0
        assert report.underscore_share > 0.5
        assert 0.0 < report.invalid_byte_share < 0.02


class TestBgpIntegration:
    def test_s1_single_as_s2_two_ases(self):
        workload = large_isp(seed=29, duration=3 * 3600.0, n_benign=400)
        recorder = ResultRecorder()
        run_variant(workload, Variant.MAIN, on_result=recorder)
        rib = Rib.from_entries(workload.hosting.rib_entries())

        def matcher(resolved, target):
            return resolved == target

        series = correlate_with_bgp(
            recorder.results, rib, ["s1-streaming.tv", "s2-streaming.tv"],
            service_matcher=matcher,
        )
        s1 = series["s1-streaming.tv"].dominant_asns(coverage=0.95)
        s2 = series["s2-streaming.tv"].dominant_asns(coverage=0.95)
        assert len(s1) == 1
        assert len(s2) == 2


class TestThreadedMatchesSimulation:
    def test_same_correlation_on_same_input(self, tiny_workload):
        dns = list(tiny_workload.dns_records())
        flows = list(tiny_workload.flow_records())
        sim = SimulationEngine(FlowDNSConfig()).run(iter(dns), iter(flows))

        engine = ThreadedEngine(FlowDNSConfig())
        threaded = engine.run([dns], [gated_flows(engine, flows)])
        # Threaded runs race DNS vs flows only at the margin; totals match.
        assert threaded.flow_records == sim.flow_records
        assert abs(threaded.correlation_rate - sim.correlation_rate) < 0.05
