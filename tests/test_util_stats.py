"""Tests for repro.util.stats."""

import math

import pytest

from repro.util.stats import Ecdf, RunningStats, cumulative_share, gini, percentile, quantiles


class TestEcdf:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            Ecdf([])

    def test_at_is_proportion_leq(self):
        ecdf = Ecdf([1, 2, 3, 4])
        assert ecdf.at(0) == 0.0
        assert ecdf.at(1) == 0.25
        assert ecdf.at(2.5) == 0.5
        assert ecdf.at(4) == 1.0
        assert ecdf.at(100) == 1.0

    def test_quantile_inverse_of_at(self):
        ecdf = Ecdf([10, 20, 30, 40, 50])
        assert ecdf.quantile(0.2) == 10
        assert ecdf.quantile(0.5) == 30
        assert ecdf.quantile(1.0) == 50

    def test_quantile_zero_is_min(self):
        assert Ecdf([5, 1, 9]).quantile(0.0) == 1

    def test_quantile_validates_range(self):
        with pytest.raises(ValueError):
            Ecdf([1]).quantile(1.5)

    def test_points_deduplicate(self):
        pts = Ecdf([1, 1, 2]).points()
        assert pts == [(1.0, 2 / 3), (2.0, 1.0)]

    def test_min_max(self):
        ecdf = Ecdf([3, 1, 4])
        assert ecdf.min == 1 and ecdf.max == 4

    def test_len(self):
        assert len(Ecdf([1, 2, 3])) == 3


class TestRunningStats:
    def test_empty_stats_are_zero(self):
        stats = RunningStats()
        assert stats.mean == 0.0
        assert stats.variance == 0.0
        assert stats.min == 0.0 and stats.max == 0.0

    def test_mean_and_variance_match_closed_form(self):
        stats = RunningStats()
        data = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
        stats.extend(data)
        mean = sum(data) / len(data)
        var = sum((x - mean) ** 2 for x in data) / (len(data) - 1)
        assert math.isclose(stats.mean, mean)
        assert math.isclose(stats.variance, var)
        assert math.isclose(stats.stdev, math.sqrt(var))

    def test_min_max_tracked(self):
        stats = RunningStats()
        stats.extend([3.0, -1.0, 10.0])
        assert stats.min == -1.0 and stats.max == 10.0

    def test_single_sample_variance_zero(self):
        stats = RunningStats()
        stats.add(5.0)
        assert stats.variance == 0.0


class TestPercentile:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            percentile([1], 101)

    def test_nearest_rank(self):
        data = list(range(1, 101))
        assert percentile(data, 50) == 50
        assert percentile(data, 99) == 99
        assert percentile(data, 100) == 100
        assert percentile(data, 0) == 1

    def test_quantiles_multiple(self):
        assert quantiles([1, 2, 3, 4], [0.25, 1.0]) == [1, 4]


class TestCumulativeShare:
    def test_orders_descending_by_default(self):
        shares = cumulative_share({"a": 1.0, "b": 3.0})
        assert shares[0][0] == "b"
        assert math.isclose(shares[0][1], 0.75)
        assert math.isclose(shares[1][1], 1.0)

    def test_empty_total_yields_zero_shares(self):
        shares = cumulative_share({"a": 0.0})
        assert shares == [("a", 0.0)]


class TestGini:
    def test_equal_values_are_zero(self):
        assert abs(gini([5, 5, 5, 5])) < 1e-9

    def test_single_holder_is_close_to_one(self):
        g = gini([0] * 99 + [100])
        assert g > 0.95

    def test_rejects_empty_and_negative(self):
        with pytest.raises(ValueError):
            gini([])
        with pytest.raises(ValueError):
            gini([-1, 2])

    def test_all_zero_is_zero(self):
        assert gini([0, 0, 0]) == 0.0
