"""Tests for repro.streams.stream and repro.streams.queues."""

import threading

import pytest

from repro.streams.queues import ShardedQueues, WorkerQueue
from repro.streams.stream import (
    RecordStream,
    StreamSet,
    flow_batches,
    interleave_streams,
    take,
)
from repro.util.errors import ConfigError, StreamClosed


class _Rec:
    def __init__(self, ts):
        self.ts = ts


class TestRecordStream:
    def test_pump_moves_records(self):
        stream = RecordStream("s", iter(range(10)), capacity=100)
        assert stream.pump(4) == 4
        assert len(stream.buffer) == 4

    def test_exhaustion_closes_buffer(self):
        stream = RecordStream("s", iter(range(3)), capacity=10)
        stream.pump(10)
        assert stream.exhausted
        assert stream.buffer.closed

    def test_drained(self):
        stream = RecordStream("s", iter(range(2)), capacity=10)
        stream.pump(10)
        assert not stream.drained
        stream.buffer.pop_batch(10)
        assert stream.drained

    def test_pump_respects_buffer_overflow(self):
        stream = RecordStream("s", iter(range(100)), capacity=5)
        moved = stream.pump(50)
        assert moved == 50
        assert stream.buffer.stats.dropped == 45

    def test_failing_source_closes_buffer_and_records_error(self):
        """A raising source must still end the stream — an open buffer
        would make downstream drain workers wait forever."""
        def source():
            yield 1
            yield 2
            raise ValueError("wire corrupt")

        stream = RecordStream("s", source(), capacity=10)
        with pytest.raises(ValueError):
            stream.pump(10)
        assert stream.exhausted
        assert stream.buffer.closed
        assert isinstance(stream.error, ValueError)
        # Items yielded before the failure are preserved.
        assert stream.buffer.pop_batch(10) == [1, 2]
        assert stream.pump(10) == 0  # further pumps are no-ops


class TestStreamSet:
    def test_requires_streams(self):
        with pytest.raises(ConfigError):
            StreamSet([])

    def test_aggregates_loss(self):
        streams = [RecordStream(f"s{i}", iter(range(20)), capacity=5) for i in range(2)]
        group = StreamSet(streams)
        group.pump_round_robin(40)
        assert group.offered == 40
        assert group.dropped == 30
        assert abs(group.loss_rate - 0.75) < 1e-9

    def test_round_robin_fair_budget(self):
        streams = [RecordStream(f"s{i}", iter(range(100)), capacity=100) for i in range(4)]
        group = StreamSet(streams)
        group.pump_round_robin(40)
        sizes = [len(s.buffer) for s in streams]
        assert sizes == [10, 10, 10, 10]

    def test_drained_all(self):
        streams = [RecordStream("a", iter([]), capacity=4)]
        group = StreamSet(streams)
        group.pump_round_robin(10)
        assert group.drained


class TestInterleave:
    def test_merges_by_timestamp(self):
        a = [_Rec(1), _Rec(4), _Rec(6)]
        b = [_Rec(2), _Rec(3), _Rec(7)]
        merged = [r.ts for r in interleave_streams([a, b])]
        assert merged == [1, 2, 3, 4, 6, 7]

    def test_custom_key(self):
        merged = list(interleave_streams([[1, 5], [2, 3]], key=lambda x: x))
        assert merged == [1, 2, 3, 5]


class TestTake:
    def test_takes_n(self):
        assert take(iter(range(100)), 3) == [0, 1, 2]

    def test_short_source(self):
        assert take(iter(range(2)), 5) == [0, 1]

    def test_negative_raises(self):
        with pytest.raises(ConfigError):
            take([], -1)


class TestWorkerQueue:
    def test_fifo(self):
        q = WorkerQueue()
        q.push(1)
        q.push(2)
        assert q.pop(timeout=0.01) == 1
        assert q.pop(timeout=0.01) == 2

    def test_close_semantics(self):
        q = WorkerQueue()
        q.push(1)
        q.close()
        assert q.pop() == 1
        assert q.pop() is None
        with pytest.raises(StreamClosed):
            q.push(2)

    def test_pop_nowait(self):
        q = WorkerQueue()
        assert q.pop_nowait() is None
        q.push("x")
        assert q.pop_nowait() == "x"

    def test_counters(self):
        q = WorkerQueue()
        for i in range(5):
            q.push(i)
        q.pop_nowait()
        assert q.pushed == 5 and q.popped == 1 and len(q) == 4

    def test_concurrent_producers(self):
        q = WorkerQueue()

        def producer(base):
            for i in range(100):
                q.push(base + i)

        threads = [threading.Thread(target=producer, args=(i * 1000,)) for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert q.pushed == 400
        assert len(q) == 400


class TestShardedQueues:
    def test_shard_count_positive(self):
        with pytest.raises(ConfigError):
            ShardedQueues(0)

    def test_routing_is_stable(self):
        queues = ShardedQueues(4, router=lambda item: item)
        queues.push(5)
        queues.push(9)  # 9 % 4 == 1 == 5 % 4
        assert len(queues.shards[1]) == 2

    def test_single_shard_degrades_to_one_queue(self):
        queues = ShardedQueues(1, router=lambda item: hash(item))
        for i in range(10):
            queues.push(i)
        assert len(queues.shards[0]) == 10

    def test_aggregate_counters(self):
        queues = ShardedQueues(3, router=lambda item: item)
        for i in range(9):
            queues.push(i)
        assert queues.pushed == 9
        queues.shards[0].pop_nowait()
        assert queues.popped == 1

    def test_close_closes_all(self):
        queues = ShardedQueues(2)
        queues.close()
        with pytest.raises(StreamClosed):
            queues.push("x")


class TestFlowBatches:
    def _flows(self, n, base=0):
        from repro.netflow.records import FlowRecord

        return [
            FlowRecord(ts=float(base + i), src_ip=f"10.0.0.{i % 250 + 1}",
                       dst_ip="100.64.0.1", bytes_=100 + i)
            for i in range(n)
        ]

    def test_rebatches_records_to_size(self):
        batches = list(flow_batches(self._flows(10), batch_size=4))
        assert [len(b) for b in batches] == [4, 4, 2]
        assert [r for b in batches for r in b.to_records()] == self._flows(10)

    def test_accepts_mixed_records_and_batches(self):
        from repro.netflow.records import FlowBatch

        pre = FlowBatch.from_records(self._flows(5, base=100))
        items = self._flows(3) + [pre] + self._flows(2, base=200)
        batches = list(flow_batches(items, batch_size=6))
        assert [len(b) for b in batches] == [6, 4]
        flattened = [r for b in batches for r in b.to_records()]
        assert flattened == self._flows(3) + self._flows(5, base=100) + self._flows(2, base=200)

    def test_rejects_unbatchable_items(self):
        with pytest.raises(ConfigError):
            list(flow_batches([b"\x00\x05datagram"]))

    def test_rejects_bad_batch_size(self):
        with pytest.raises(ConfigError):
            list(flow_batches([], batch_size=0))

    def test_empty_source_yields_nothing(self):
        assert list(flow_batches([])) == []
