"""Tests for repro.dns.wire (message codec) and repro.dns.rr."""

import ipaddress

import pytest

from repro.dns.rr import RClass, RRType, ResourceRecord, a_record, aaaa_record, cname_record
from repro.dns.wire import (
    DnsMessage,
    Header,
    Opcode,
    Question,
    Rcode,
    decode_message,
    encode_message,
)
from repro.util.errors import ParseError


def _response(answers, questions=None):
    msg = DnsMessage()
    msg.questions = questions or [Question("example.com", RRType.A)]
    msg.answers = answers
    return msg


class TestResourceRecord:
    def test_a_record_coerces_address(self):
        rr = a_record("host.example", "1.2.3.4", 60)
        assert isinstance(rr.rdata, ipaddress.IPv4Address)

    def test_aaaa_record_coerces_address(self):
        rr = aaaa_record("host.example", "2001:db8::1", 60)
        assert isinstance(rr.rdata, ipaddress.IPv6Address)

    def test_cname_normalizes_target(self):
        rr = cname_record("A.Example.COM", "CDN.Example.NET.", 300)
        assert rr.name == "a.example.com"
        assert rr.rdata == "cdn.example.net"

    def test_negative_ttl_rejected(self):
        with pytest.raises(ParseError):
            a_record("x.example", "1.2.3.4", -1)

    def test_is_address_and_is_cname(self):
        assert a_record("x.example", "1.2.3.4", 1).is_address
        assert cname_record("x.example", "y.example", 1).is_cname
        assert not cname_record("x.example", "y.example", 1).is_address

    def test_rdata_text(self):
        assert a_record("x.example", "1.2.3.4", 1).rdata_text() == "1.2.3.4"
        raw = ResourceRecord("x.example", RRType.TXT, RClass.IN, 1, b"\x01\x02")
        assert raw.rdata_text() == "0102"


class TestHeaderFlags:
    def test_flags_round_trip(self):
        header = Header(msg_id=0x1234, qr=True, aa=True, tc=False, rd=True,
                        ra=True, rcode=Rcode.NXDOMAIN)
        word = header.flags_word()
        back = Header.from_flags_word(0x1234, word)
        assert back == header

    def test_query_vs_response_bit(self):
        assert Header(qr=False).flags_word() & 0x8000 == 0
        assert Header(qr=True).flags_word() & 0x8000 == 0x8000

    def test_opcode_encoded(self):
        header = Header(opcode=Opcode.UPDATE)
        assert Header.from_flags_word(0, header.flags_word()).opcode == Opcode.UPDATE


class TestMessageRoundTrip:
    def test_single_a_answer(self):
        msg = _response([a_record("example.com", "93.184.216.34", 300)])
        decoded = decode_message(encode_message(msg))
        assert len(decoded.answers) == 1
        assert str(decoded.answers[0].rdata) == "93.184.216.34"
        assert decoded.answers[0].ttl == 300

    def test_cdn_chain_message(self):
        msg = _response(
            [
                cname_record("www.svc.com", "svc.r0.cdn.net", 3600),
                cname_record("svc.r0.cdn.net", "e-svc.edge.cdn.net", 1800),
                a_record("e-svc.edge.cdn.net", "198.51.100.7", 60),
            ],
            questions=[Question("www.svc.com", RRType.A)],
        )
        decoded = decode_message(encode_message(msg))
        assert [rr.rtype for rr in decoded.answers] == [RRType.CNAME, RRType.CNAME, RRType.A]
        assert decoded.answers[1].rdata == "e-svc.edge.cdn.net"

    def test_aaaa_answer(self):
        msg = _response([aaaa_record("v6.example.com", "2001:db8::2:1", 120)])
        decoded = decode_message(encode_message(msg))
        assert str(decoded.answers[0].rdata) == "2001:db8::2:1"

    def test_multiple_answers_same_owner(self):
        msg = _response(
            [a_record("lb.example.com", f"10.0.0.{i}", 60) for i in range(1, 5)]
        )
        decoded = decode_message(encode_message(msg))
        assert len(decoded.answers) == 4
        assert {str(rr.rdata) for rr in decoded.answers} == {
            "10.0.0.1", "10.0.0.2", "10.0.0.3", "10.0.0.4",
        }

    def test_compression_shrinks_output(self):
        answers = [a_record("host.deep.example.com", f"10.0.1.{i}", 60) for i in range(1, 9)]
        msg = _response(answers, questions=[Question("host.deep.example.com", RRType.A)])
        wire = encode_message(msg)
        # Uncompressed the owner name alone is 22 bytes × 9 occurrences.
        uncompressed_estimate = 12 + 9 * (22 + 4) + 8 * (10 + 4)
        assert len(wire) < uncompressed_estimate

    def test_empty_message_round_trip(self):
        decoded = decode_message(encode_message(DnsMessage()))
        assert decoded.questions == []
        assert decoded.answers == []

    def test_authority_and_additional_sections(self):
        msg = DnsMessage()
        msg.authorities.append(
            ResourceRecord("example.com", RRType.NS, RClass.IN, 3600, "ns1.example.com")
        )
        msg.additionals.append(a_record("ns1.example.com", "192.0.2.53", 3600))
        decoded = decode_message(encode_message(msg))
        assert decoded.authorities[0].rdata == "ns1.example.com"
        assert str(decoded.additionals[0].rdata) == "192.0.2.53"

    def test_mx_record_round_trip(self):
        msg = _response(
            [ResourceRecord("example.com", RRType.MX, RClass.IN, 600, (10, "mail.example.com"))]
        )
        decoded = decode_message(encode_message(msg))
        assert decoded.answers[0].rdata == (10, "mail.example.com")

    def test_txt_record_round_trip(self):
        msg = _response(
            [ResourceRecord("example.com", RRType.TXT, RClass.IN, 60, b"\x07v=spf1\x20")]
        )
        decoded = decode_message(encode_message(msg))
        assert decoded.answers[0].rdata == b"\x07v=spf1\x20"


class TestMessageHelpers:
    def test_address_and_cname_answers_filters(self):
        msg = _response(
            [
                cname_record("a.example", "b.example", 60),
                a_record("b.example", "10.1.1.1", 60),
            ]
        )
        assert len(msg.address_answers()) == 1
        assert len(msg.cname_answers()) == 1


class TestDecodeErrors:
    def test_short_message(self):
        with pytest.raises(ParseError):
            decode_message(b"\x00\x01")

    def test_truncated_question(self):
        msg = _response([a_record("example.com", "1.1.1.1", 60)])
        wire = encode_message(msg)
        with pytest.raises(ParseError):
            decode_message(wire[:14])

    def test_truncated_answer_rdata(self):
        msg = _response([a_record("example.com", "1.1.1.1", 60)])
        wire = encode_message(msg)
        with pytest.raises(ParseError):
            decode_message(wire[:-2])

    def test_a_record_wrong_rdlength(self):
        msg = _response([a_record("example.com", "1.1.1.1", 60)])
        wire = bytearray(encode_message(msg))
        wire[-5] = 3  # corrupt RDLENGTH (4 → 3)
        with pytest.raises(ParseError):
            decode_message(bytes(wire[:-1]))
