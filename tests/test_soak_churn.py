"""CNAME-churn soak: the bounded-memory gate.

A long-lived ``serve`` is fed by resolvers whose CDN names re-resolve
endlessly — every step maps a *fresh* name to a fresh CNAME chain and a
fresh IP, so nothing is ever reused and an unbounded store grows
forever (the paper's collectors run for weeks; Section 3's maps must
not). With ``max_entries_per_map`` set, the store must stay under a
fixed bound *throughout* the run — sampled live, not just at the end —
while the most recent window keeps correlating at full accuracy,
because eviction is oldest-first.
"""

import io

from engine_gates import gated_flows

from repro.core.config import FlowDNSConfig
from repro.core.engine import ThreadedEngine
from repro.core.writer import parse_result_line
from repro.dns.rr import RRType
from repro.dns.stream import DnsRecord
from repro.netflow.records import FlowRecord

#: The soak's memory envelope: per-map cap x split maps x three tiers
#: (active/inactive/long) x two banks (ip_name + name_cname).
_CAP = 150
_NUM_SPLIT = 2
_BOUND = _CAP * _NUM_SPLIT * 3 * 2


def _config(max_entries):
    # Small rotation intervals so the soak crosses several clear-ups:
    # eviction must compose with rotation, not replace it. One fill
    # worker keeps dict insertion order equal to arrival order — with
    # concurrent fill workers batches interleave and "oldest-inserted"
    # is only approximately "oldest-arrived", which would make the
    # recency assertion below nondeterministic.
    return FlowDNSConfig(num_split=_NUM_SPLIT, a_clear_up_interval=20.0,
                         c_clear_up_interval=20.0,
                         fillup_workers_per_stream=1,
                         lookup_workers_per_stream=1,
                         max_entries_per_map=max_entries)


def _ip(i):
    return f"10.{(i >> 16) & 255}.{(i >> 8) & 255}.{i & 255}"


def _churn_records(steps):
    """Two records per step: svc{i} -> edge{i} (CNAME), edge{i} -> ip (A)."""
    for i in range(steps):
        ts = i * 0.01
        yield DnsRecord(ts, f"svc{i}.example", RRType.CNAME, 600,
                        f"edge{i}.cdn.net")
        yield DnsRecord(ts, f"edge{i}.cdn.net", RRType.A, 60, _ip(i))


class TestChurnSoak:
    def test_memory_stays_bounded_under_cname_churn(self):
        steps = 10_000
        sink = io.StringIO()
        engine = ThreadedEngine(_config(_CAP), sink=sink)
        samples = []

        def sampled():
            for n, record in enumerate(_churn_records(steps)):
                if n % 1000 == 999:
                    samples.append(engine.storage.total_entries())
                yield record

        # The newest churn window must still correlate after the soak:
        # oldest-first eviction may cost (essentially only) the stale tail.
        recent = range(steps - 20, steps)
        flows = [
            FlowRecord(ts=steps * 0.01, src_ip=_ip(i),
                       dst_ip="100.64.0.1", bytes_=10)
            for i in recent
        ]
        report = engine.run([sampled()], [gated_flows(engine, flows)])

        assert report.dns_records == steps * 2
        assert report.evictions > 0
        # Bounded at the end AND at every live sample along the way.
        assert report.final_map_entries <= _BOUND
        assert len(samples) == (steps * 2) // 1000
        assert max(samples) <= _BOUND
        # Near-full correlation of the fresh window: eviction is
        # *approximately* FIFO (exact within a shard, spread across
        # shards), so a large trim may clip an entry or two even from
        # the newest window — but never decimate it the way LIFO or
        # random eviction would.
        assert report.matched_flows >= 0.9 * len(flows)
        assert report.chain_lengths.get(2, 0) >= 0.8 * len(flows)
        # Every flow emits exactly one row (unmatched rows carry "-"),
        # and the matched-row count agrees with the report's counter.
        rows = [parse_result_line(line)
                for line in sink.getvalue().splitlines()]
        rows = [row for row in rows if row is not None]
        assert len(rows) == report.flow_records
        assert sum(1 for row in rows if row["chain"]) == report.matched_flows

    def test_uncapped_control_exceeds_the_bound(self):
        """The same churn without a cap blows through the envelope —
        proof the soak's workload actually exercises eviction."""
        engine = ThreadedEngine(_config(0))
        report = engine.run([_churn_records(2000)], [])
        assert report.evictions == 0
        assert report.final_map_entries > _BOUND

    def test_eviction_counter_reaches_the_report(self):
        """Evictions surface on the summary dict path every engine uses
        (plain-dict summaries cross IPC for the sharded engine)."""
        engine = ThreadedEngine(_config(50))
        report = engine.run([_churn_records(1000)], [])
        assert report.evictions > 0
        assert report.evictions == engine.storage.evictions()
