"""Cross-engine differential harness over *generated* workloads.

The golden corpus (:mod:`tests.test_replay_differential`) pins the
engines on hand-built scenarios of a few hundred flows; this suite runs
the same contract at generated scale: three checked-in ``(seed, config)``
points — ~10K flows each, regenerated into tmp on every run, never
stored — must replay to identical sorted rows and merged stats through
threaded, sharded, and async, fault-free runs must satisfy every
accounting invariant including the row-count check, and a deterministic
fault leg must keep the books balanced while actually losing traffic.

Two genuine behaviours this suite discovered and now pins:

* CNAME-chain *memoisation* (Algorithm 2 step 7) makes the reported
  chain text depend on batch and shard layout — once a multi-hop chain
  is memoised, later look-ups report the shortcut, and *when* that
  happens differs per engine. Endpoints, match outcomes, and every byte
  counter stay identical; only the chain interior varies. So the
  exact-rows contract is asserted with ``memoize_cname_chains=False``,
  and a dedicated test pins the memoised mode's guarantee: identical
  stats and identical rows modulo the chain interior.
* The threaded engine's *fill* is only deterministic with a single
  FillUp worker per DNS stream. With the default two, workers race on
  the shared store, so when one IP is announced by several names
  (shared CDN pools do this constantly) the winning name is
  thread-scheduling-dependent — the same capture replays to different
  rows run over run, no warning, identical counts. Every leg here
  therefore pins ``fillup_workers_per_stream=1``; the contract under
  concurrent fill is counts-and-invariants only, never row text.

The golden corpus never caught either: no golden scenario walks a
≥2-CNAME chain twice or announces one IP under two names close enough
together to straddle a worker batch boundary.

The sweep driver rides the same captures: its row list, bench-JSON
landing, and CLI surface are covered here rather than in a separate
suite so one generated grid pays for all of it.
"""

import dataclasses
import io
import json

import pytest

from repro.cli import main as cli_main
from repro.core.config import EngineConfig
from repro.core.invariants import assert_invariants
from repro.replay.runner import REPLAY_ENGINES, replay_capture
from repro.util.errors import ConfigError
from repro.workloads.generator import GeneratorParams, WorkloadGenerator
from repro.workloads.sweep import (
    SWEEP_BENCH_KEY,
    SweepSpec,
    run_sweep,
    sweep_points,
)

#: Report fields every engine must agree on, bit for bit (the same set
#: the golden-corpus differential compares).
COMPARABLE_FIELDS = (
    "matched_flows",
    "flow_records",
    "dns_records",
    "total_bytes",
    "correlated_bytes",
    "chain_lengths",
    "overwrites",
)

#: The checked-in differential grid: seeds and configs live here in the
#: repo, captures are regenerated per run (byte-identical every time —
#: ``tests/test_workload_generator.py`` pins that). Each point stresses
#: a different shape: default websearch, v6-heavy short-TTL churn, and
#: deep chains with heavy-tailed datamining sizes + partial visibility.
DIFFERENTIAL_CONFIGS = {
    "websearch-default": GeneratorParams(
        seed=101, clients=3000, duration=60.0,
    ),
    "v6-short-ttl": GeneratorParams(
        seed=103, clients=3000, duration=60.0, aaaa_fraction=0.6,
        ttl_profile="short", zipf_alpha=1.1,
    ),
    # public_resolver_fraction must be high to matter: visibility is
    # per-*resolution* against the generator's shared name cache, so one
    # visible resolution covers every client — at 0.2 the match rate
    # stays above 0.99; 0.8 is where real coverage loss shows up.
    "datamining-deep-chains": GeneratorParams(
        seed=107, clients=3000, duration=60.0, flow_size_cdf="datamining",
        chain_depth=6, public_resolver_fraction=0.8, ttl_profile="long",
    ),
}


@pytest.fixture(scope="module")
def generated_captures(tmp_path_factory):
    """Generate each differential point once per test session."""
    root = tmp_path_factory.mktemp("generated")
    captures = {}
    for name, params in DIFFERENTIAL_CONFIGS.items():
        path = str(root / f"{name}.fdc")
        report = WorkloadGenerator(params).write(path)
        assert report.flows > 8000, f"{name} is too small to stress the engines"
        captures[name] = (path, report)
    return captures


def _leg_config(engine, memoize=True, **overrides):
    """A replay leg pinned for row-level determinism.

    ``fillup_workers_per_stream=1`` always: concurrent fill workers
    apply same-IP overwrites in scheduling order (see module docstring),
    and every assertion here that compares row text — across engines or
    across reruns — needs arrival-order overwrites to be the spec.
    """
    config = EngineConfig.for_replay_leg(engine, **overrides)
    flowdns = config.flowdns.replace(fillup_workers_per_stream=1)
    if not memoize:
        flowdns = flowdns.replace(memoize_cname_chains=False)
    return dataclasses.replace(config, flowdns=flowdns)


def _replay(capture, engine, config=None):
    sink = io.StringIO()
    report = replay_capture(
        capture,
        engine=engine,
        config=config if config is not None else _leg_config(engine),
        sink=sink,
        num_shards=2,
    )
    rows = sorted(
        line for line in sink.getvalue().splitlines()
        if line and not line.startswith("#")
    )
    return report, rows


def _strip_chain_interior(row):
    """Row with its chain column reduced to ``first>last``: the part of
    a correlation memoisation is allowed to rewrite is the interior."""
    columns = row.split("\t")
    hops = columns[-1].split(">")
    columns[-1] = hops[0] if len(hops) == 1 else f"{hops[0]}>{hops[-1]}"
    return "\t".join(columns)


class TestGeneratedDifferential:
    @pytest.mark.parametrize("name", sorted(DIFFERENTIAL_CONFIGS))
    def test_engines_agree_and_invariants_hold(self, generated_captures, name):
        """The headline assertion at generated scale: identical sorted
        rows and merged stats from all three engines, and every report
        passes the accounting invariants including row-count.

        Memoisation is off here — it rewrites chain interiors on a
        batch-layout-dependent schedule (pinned separately below), and
        this test's contract is bit-identical output."""
        path, gen_report = generated_captures[name]
        baseline, baseline_rows = _replay(
            path, "threaded", _leg_config("threaded", memoize=False)
        )
        assert_invariants(baseline, rows=len(baseline_rows))
        assert baseline.flow_records > 0
        assert baseline.matched_flows > 0
        for engine in ("sharded", "async"):
            report, rows = _replay(path, engine, _leg_config(engine, memoize=False))
            assert rows == baseline_rows, f"{engine} rows diverged from threaded"
            for field in COMPARABLE_FIELDS:
                assert getattr(report, field) == getattr(baseline, field), (
                    f"{engine} {field}: {getattr(report, field)!r} "
                    f"!= threaded {getattr(baseline, field)!r}"
                )
            assert_invariants(report, rows=len(rows))

    def test_memoisation_rewrites_only_chain_interiors(self, generated_captures):
        """With memoisation on (the default), engines may disagree on
        *when* a multi-hop chain starts reporting its shortcut — but
        endpoints, match outcomes, and every byte counter must still be
        identical, and the divergence must actually exist (otherwise
        the exact-rows test above is testing nothing)."""
        path, _ = generated_captures["datamining-deep-chains"]
        baseline, baseline_rows = _replay(path, "threaded")
        assert_invariants(baseline, rows=len(baseline_rows))
        stripped_baseline = [_strip_chain_interior(r) for r in baseline_rows]
        diverged = False
        for engine in ("sharded", "async"):
            report, rows = _replay(path, engine)
            diverged = diverged or rows != baseline_rows
            assert [_strip_chain_interior(r) for r in rows] == stripped_baseline, (
                f"{engine} diverged beyond the chain interior"
            )
            for field in COMPARABLE_FIELDS:
                if field == "chain_lengths":
                    continue  # memoised walks legitimately shorten
                assert getattr(report, field) == getattr(baseline, field), field
            assert_invariants(report, rows=len(rows))
        assert diverged, (
            "no engine diverged under memoisation: deepen the config or "
            "drop the memoize=False special-casing"
        )

    def test_visibility_shapes_match_rate(self, generated_captures):
        """The partial-visibility config must correlate strictly less of
        its traffic than the fully-visible ones — the differential grid
        has to discriminate, not just agree."""
        rates = {}
        for name, (path, _) in generated_captures.items():
            report, _ = _replay(path, "threaded")
            rates[name] = report.matched_flows / report.flow_records
        assert rates["websearch-default"] > 0.95
        assert rates["v6-short-ttl"] > 0.95
        assert rates["datamining-deep-chains"] < 0.92
        fully_visible = min(rates["websearch-default"], rates["v6-short-ttl"])
        assert rates["datamining-deep-chains"] < fully_visible - 0.05

    @pytest.mark.parametrize("engine", REPLAY_ENGINES)
    def test_fault_leg_loses_traffic_but_keeps_the_books(
        self, generated_captures, engine
    ):
        """lossy-udp at a fixed fault seed: flows are genuinely dropped
        (vs the fault-free baseline) yet the loss counters account for
        every one of them — and the same (engine, seed) leg is
        deterministic run over run."""
        path, _ = generated_captures["websearch-default"]
        clean, _ = _replay(path, engine)
        config = _leg_config(engine, fault_profile="lossy-udp", fault_seed=99)
        faulted, rows = _replay(path, engine, config)
        assert_invariants(faulted)
        # Fault drops happen at the wire, upstream of the stream buffers
        # that overall_loss_rate measures — the observable is the record
        # count vs the clean leg. At ~10K flows, drop 0.08 / dup 0.04
        # on frames nets out to a real deficit.
        assert faulted.flow_records < clean.flow_records
        again, rows_again = _replay(path, engine, config)
        assert rows_again == rows
        assert again.flow_records == faulted.flow_records


class TestSweepSpec:
    def test_points_are_the_cartesian_grid_in_stable_order(self):
        spec = SweepSpec(
            clients=(100, 200), zipf_alphas=(0.7, 1.1), chain_depths=(2,),
            engines=("threaded",),
        )
        points = sweep_points(spec)
        assert [(p.clients, p.zipf_alpha, p.chain_depth) for p in points] == [
            (100, 0.7, 2), (100, 1.1, 2), (200, 0.7, 2), (200, 1.1, 2),
        ]

    @pytest.mark.parametrize("kwargs,match", [
        ({"engines": ()}, "empty"),
        ({"engines": ("warp",)}, "unknown replay engine"),
        ({"shards": 2, "engines": ("threaded",)}, "sharded"),
        ({"fill_timeout": 0.5, "engines": ("async",)}, "threaded"),
        ({"fault_seed": 3}, "fault profile"),
        ({"clients": (0,)}, "clients"),
    ])
    def test_bad_specs_rejected_eagerly(self, kwargs, match):
        with pytest.raises(ConfigError, match=match):
            SweepSpec(**kwargs)

    def test_leg_config_scopes_knobs_to_their_engines(self):
        spec = SweepSpec(
            engines=("threaded", "sharded"), shards=3, fill_timeout=0.25,
            fault_profiles=(None, "lossy-udp"), fault_seed=7,
        )
        sharded = spec.leg_config("sharded", None)
        assert sharded.shards == 3
        threaded = spec.leg_config("threaded", "lossy-udp")
        assert threaded.fill_timeout == 0.25
        assert threaded.fault_profile == "lossy-udp"
        assert threaded.fault_seed == 7
        baseline = spec.leg_config("threaded", None)
        assert baseline.fault_profile is None
        assert baseline.fault_seed is None


class TestRunSweep:
    #: Small but real: 2 workload points x (2 engines x 2 fault legs).
    SPEC = SweepSpec(
        clients=(300, 600),
        engines=("threaded", "async"),
        fault_profiles=(None, "lossy-udp"),
        fault_seed=5,
        base=GeneratorParams(seed=109, duration=20.0),
    )

    def test_rows_cover_the_grid_and_land_in_bench_json(self, tmp_path):
        bench = tmp_path / "bench.json"
        messages = []
        rows = run_sweep(
            self.SPEC, str(tmp_path / "sweeps"),
            bench_path=str(bench), log=messages.append,
        )
        assert len(rows) == 2 * 2 * 2
        assert {(r["clients"], r["engine"], r["fault_profile"]) for r in rows} == {
            (c, e, p)
            for c in (300, 600)
            for e in ("threaded", "async")
            for p in ("none", "lossy-udp")
        }
        baseline = {
            (r["clients"], r["engine"]): r for r in rows
            if r["fault_profile"] == "none"
        }
        for row in rows:
            assert row["generated_flows"] > 0
            assert 0.0 <= row["match_rate"] <= 1.0
            assert 0.0 <= row["loss_rate"] <= 1.0
            if row["fault_profile"] == "none":
                assert row["output_rows"] == row["delivered_flows"]
                assert row["loss_rate"] == 0.0
            else:
                # Frame drop and duplication both change the delivered
                # count; on a small capture the *net* can even be a
                # surplus (loss_rate clamps to 0), so the contract is
                # "the faults visibly touched traffic", not "net loss".
                twin = baseline[(row["clients"], row["engine"])]
                assert row["delivered_flows"] != twin["delivered_flows"]
        # Captures are deleted once their legs finish...
        assert list((tmp_path / "sweeps").glob("*.fdc")) == []
        # ...the rows landed under the bench key...
        recorded = json.loads(bench.read_text())
        assert recorded[SWEEP_BENCH_KEY] == rows
        # ...and the log narrated every point.
        assert any("2 workload points" in m for m in messages)

    def test_keep_captures_retains_the_grid(self, tmp_path):
        spec = SweepSpec(
            clients=(200,), engines=("async",),
            base=GeneratorParams(seed=113, duration=10.0),
        )
        run_sweep(
            spec, str(tmp_path), bench_path=str(tmp_path / "b.json"),
            keep_captures=True,
        )
        kept = list(tmp_path.glob("*.fdc"))
        assert len(kept) == 1
        assert kept[0].name == "sweep-c200-a0.9-d4.fdc"


class TestSweepCli:
    def test_sweep_smoke(self, tmp_path, capsys):
        bench = tmp_path / "bench.json"
        code = cli_main([
            "sweep", str(tmp_path / "out"),
            "--clients", "250", "--engine", "async",
            "--seed", "11", "--duration", "10",
            "--bench", str(bench),
        ])
        assert code == 0
        captured = capsys.readouterr()
        assert "match" in captured.out  # the summary table printed
        rows = json.loads(bench.read_text())[SWEEP_BENCH_KEY]
        assert len(rows) == 1
        assert rows[0]["engine"] == "async"
        assert rows[0]["clients"] == 250

    def test_list_fault_profiles(self, capsys):
        assert cli_main(["sweep", "--list-fault-profiles"]) == 0
        assert "lossy-udp" in capsys.readouterr().out

    def test_missing_out_dir_exits_2(self, capsys):
        assert cli_main(["sweep"]) == 2
        assert "output directory" in capsys.readouterr().err

    def test_bad_axis_exits_2(self, tmp_path, capsys):
        code = cli_main([
            "sweep", str(tmp_path), "--shards", "2", "--engine", "async",
        ])
        assert code == 2
        assert "sharded" in capsys.readouterr().err
