"""The fault-injection layer: determinism, per-fault behaviour, profiles.

The contract under test is reproducibility: a faulted stream is a pure
function of ``(input frames, plan, seed)``, per-lane — so the same seed
replays the identical perturbation, and faulting one lane never consumes
draws that would change the other lane's byte stream.
"""

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.replay import (
    FAULT_PROFILES,
    LANE_DNS,
    LANE_FLOW,
    CaptureFrame,
    FaultInjector,
    FaultPlan,
    FaultedSource,
    LaneFaults,
    parse_fault_specs,
    resolve_fault_plan,
)
from repro.replay.scenarios import build_scenario
from repro.util.errors import ConfigError


def _frames(n=40, lane=LANE_FLOW, size=64):
    # Unique payloads (the 2-byte index repeats through the whole frame)
    # so permutation tests can recover each frame's input position.
    return [
        CaptureFrame(
            ts=float(i),
            lane=lane,
            payload=(i.to_bytes(2, "big") * (size // 2 + 1))[:size],
        )
        for i in range(n)
    ]


class TestPlanValidation:
    @pytest.mark.parametrize("knob", ["drop_rate", "duplicate_rate", "reorder_rate",
                                      "corrupt_rate", "truncate_rate", "stall_rate"])
    def test_rates_must_be_probabilities(self, knob):
        with pytest.raises(ConfigError):
            LaneFaults(**{knob: 1.5})
        with pytest.raises(ConfigError):
            LaneFaults(**{knob: -0.1})

    def test_window_and_stall_bounds(self):
        with pytest.raises(ConfigError):
            LaneFaults(reorder_window=0)
        with pytest.raises(ConfigError):
            LaneFaults(stall_seconds=-1.0)

    def test_active_flags(self):
        assert not LaneFaults().active
        assert LaneFaults(clock_skew=-1.0).active
        assert LaneFaults(drop_rate=0.1).active
        assert not FaultPlan().active
        assert FaultPlan(flow=LaneFaults(drop_rate=0.1)).active

    def test_profiles_are_all_active_and_described(self):
        for name, plan in FAULT_PROFILES.items():
            assert plan.active, name
            assert plan.description, name

    def test_unknown_lane_rejected(self):
        with pytest.raises(ConfigError, match="unknown fault lane"):
            FaultPlan().lane("smoke-signals")


class TestSpecParsing:
    def test_specs_parse_to_field_values(self):
        values = parse_fault_specs(["drop=0.05", "reorder_window=8", "clock_skew=-30"])
        assert values == {
            "drop_rate": 0.05, "reorder_window": 8, "clock_skew": -30.0,
        }

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigError, match="unknown fault"):
            parse_fault_specs(["jitter=0.1"])

    def test_missing_equals_rejected(self):
        with pytest.raises(ConfigError, match="NAME=VALUE"):
            parse_fault_specs(["drop"])

    def test_non_numeric_value_rejected(self):
        with pytest.raises(ConfigError, match="needs a number"):
            parse_fault_specs(["drop=lots"])

    def test_resolve_overlays_specs_on_profile(self):
        plan = resolve_fault_plan("lossy-udp", ["drop=0.5"])
        assert plan.flow.drop_rate == 0.5
        assert plan.dns.drop_rate == 0.5  # symmetric overlay
        # untouched profile knobs survive
        assert plan.flow.duplicate_rate == FAULT_PROFILES["lossy-udp"].flow.duplicate_rate

    def test_resolve_none_when_nothing_given(self):
        assert resolve_fault_plan(None, None) is None
        assert resolve_fault_plan(None, []) is None

    def test_resolve_unknown_profile(self):
        with pytest.raises(ConfigError, match="unknown fault profile"):
            resolve_fault_plan("chaos-monkey", None)

    def test_out_of_range_spec_rejected_at_plan_construction(self):
        with pytest.raises(ConfigError, match=r"\[0, 1\]"):
            resolve_fault_plan(None, ["drop=2.0"])


class TestDeterminism:
    @pytest.mark.parametrize("profile", sorted(FAULT_PROFILES))
    def test_same_seed_same_stream(self, profile):
        frames = build_scenario("malformed", seed=7)
        plan = FAULT_PROFILES[profile]
        first = FaultInjector(plan, seed=42).apply(frames)
        second = FaultInjector(plan, seed=42).apply(frames)
        assert first == second

    def test_different_seed_different_stream(self):
        frames = build_scenario("bursts", seed=7)
        plan = FAULT_PROFILES["everything"]
        a = FaultInjector(plan, seed=1).apply(frames)
        b = FaultInjector(plan, seed=2).apply(frames)
        assert a != b

    def test_lane_independence(self):
        """Faulting the DNS lane must not change the flow lane's stream:
        each lane draws from its own derived RNG."""
        frames = build_scenario("two-site", seed=7)
        flow_only = FaultPlan(flow=FAULT_PROFILES["everything"].flow)
        both = FaultPlan(
            dns=FAULT_PROFILES["everything"].dns,
            flow=FAULT_PROFILES["everything"].flow,
        )
        flows_a = [f for f in FaultInjector(flow_only, seed=5).apply(frames)
                   if f.lane == LANE_FLOW]
        flows_b = [f for f in FaultInjector(both, seed=5).apply(frames)
                   if f.lane == LANE_FLOW]
        assert flows_a == flows_b

    def test_apply_matches_wrapped_source_per_lane(self):
        """A lane faulted through ``wrap_source`` sees the identical
        perturbation the whole-capture ``apply`` gives that lane."""
        frames = _frames(60)
        plan = FaultPlan(flow=LaneFaults(
            drop_rate=0.2, duplicate_rate=0.1, reorder_rate=0.2, corrupt_rate=0.1,
        ))
        injector = FaultInjector(plan, seed=9)
        applied = [f.payload for f in injector.apply(frames)]
        wrapped = FaultedSource(
            [f.payload for f in frames], LANE_FLOW, plan, seed=9
        )
        assert list(wrapped) == applied
        # and the wrapper re-derives its RNG per iteration
        assert list(wrapped) == applied


class TestPerFaultBehaviour:
    def test_drop_only_loses_frames(self):
        frames = _frames(200)
        plan = FaultPlan(flow=LaneFaults(drop_rate=0.3))
        injector = FaultInjector(plan, seed=1)
        out = injector.apply(frames)
        stats = injector.stats[LANE_FLOW]
        assert stats.dropped > 0
        assert len(out) == len(frames) - stats.dropped
        surviving = [f.payload for f in out]
        assert all(p in {f.payload for f in frames} for p in surviving)

    def test_duplicate_emits_adjacent_copies(self):
        frames = _frames(200)
        plan = FaultPlan(flow=LaneFaults(duplicate_rate=0.3))
        injector = FaultInjector(plan, seed=1)
        out = injector.apply(frames)
        stats = injector.stats[LANE_FLOW]
        assert stats.duplicated > 0
        assert len(out) == len(frames) + stats.duplicated

    def test_reorder_stays_within_window(self):
        frames = _frames(300)
        window = 5
        plan = FaultPlan(flow=LaneFaults(reorder_rate=0.4, reorder_window=window))
        injector = FaultInjector(plan, seed=3)
        out = injector.apply(frames)
        assert injector.stats[LANE_FLOW].reordered > 0
        # Nothing lost, nothing invented — just permuted.
        assert sorted(f.payload for f in out) == sorted(f.payload for f in frames)
        # Bounded forward displacement: a held frame is released after at
        # most `window` further emissions, so it can never appear more
        # than `window` output positions late. (It can appear *earlier*
        # than its input index — that is other frames being delayed.)
        positions = {f.payload: i for i, f in enumerate(out)}
        for i, frame in enumerate(frames):
            assert positions[frame.payload] - i <= window, (
                f"frame {i} displaced beyond the reorder window"
            )

    def test_corrupt_mutates_payload_preserving_length(self):
        frames = _frames(100)
        plan = FaultPlan(flow=LaneFaults(corrupt_rate=0.5))
        injector = FaultInjector(plan, seed=2)
        out = injector.apply(frames)
        stats = injector.stats[LANE_FLOW]
        assert stats.corrupted > 0
        originals = {f.payload for f in frames}
        mutated = [f for f in out if f.payload not in originals]
        assert len(mutated) == stats.corrupted
        assert all(len(f.payload) == 64 for f in out)

    def test_truncate_shortens_and_can_reach_zero(self):
        frames = _frames(400, size=3)
        plan = FaultPlan(flow=LaneFaults(truncate_rate=1.0))
        injector = FaultInjector(plan, seed=4)
        out = injector.apply(frames)
        assert injector.stats[LANE_FLOW].truncated == len(frames)
        lengths = {len(f.payload) for f in out}
        assert lengths <= {0, 1, 2}
        assert 0 in lengths, "zero-length truncation must be reachable"

    def test_stall_accumulates_and_skew_shifts_timestamps(self):
        frames = _frames(50)
        plan = FaultPlan(flow=LaneFaults(
            stall_rate=1.0, stall_seconds=0.5, clock_skew=100.0,
        ))
        injector = FaultInjector(plan, seed=6)
        out = injector.apply(frames)
        assert injector.stats[LANE_FLOW].stalled == len(frames)
        # Frame i suffers (i+1) stalls of 0.5s plus the constant skew.
        for i, frame in enumerate(out):
            assert frame.ts == pytest.approx(float(i) + 100.0 + 0.5 * (i + 1))
        # Timestamps rewritten, delivery order untouched.
        assert [f.payload for f in out] == [f.payload for f in frames]

    def test_flush_releases_held_frames(self):
        frames = _frames(10)
        plan = FaultPlan(flow=LaneFaults(reorder_rate=1.0, reorder_window=50))
        injector = FaultInjector(plan, seed=8)
        out = injector.apply(frames)
        assert sorted(f.payload for f in out) == sorted(f.payload for f in frames)

    def test_inactive_plan_is_identity(self):
        frames = build_scenario("two-site", seed=7)
        out = FaultInjector(FaultPlan(), seed=0).apply(frames)
        assert out == list(frames)


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**32),
    drop=st.floats(min_value=0.0, max_value=1.0),
    dup=st.floats(min_value=0.0, max_value=1.0),
    reorder=st.floats(min_value=0.0, max_value=1.0),
)
def test_frame_conservation_property(seed, drop, dup, reorder):
    """frames_out == frames_in - dropped + duplicated, for any plan/seed."""
    frames = _frames(80)
    plan = FaultPlan(flow=LaneFaults(
        drop_rate=drop, duplicate_rate=dup, reorder_rate=reorder,
    ))
    injector = FaultInjector(plan, seed=seed)
    out = injector.apply(frames)
    stats = injector.stats[LANE_FLOW]
    assert stats.frames_in == len(frames)
    assert stats.frames_out == len(frames) - stats.dropped + stats.duplicated
    assert len(out) == stats.frames_out


def test_faulted_source_proxies_ingest_protocol():
    class FakeSource:
        ingest_stats = object()
        ingest_errors = ("boom",)
        closed = False

        def close(self):
            self.closed = True

        def __iter__(self):
            return iter([b"x", b"y"])

    source = FakeSource()
    faulted = FaultedSource(source, LANE_FLOW, FaultPlan(), seed=0)
    assert faulted.ingest_stats is source.ingest_stats
    assert faulted.ingest_errors == ("boom",)
    faulted.close()
    assert source.closed
    assert list(faulted) == [b"x", b"y"]


def test_dns_lane_preserves_tuples():
    source = [(1.0, b"aa"), (2.0, b"bb")]
    plan = FaultPlan(dns=LaneFaults(clock_skew=10.0))
    faulted = FaultedSource(source, LANE_DNS, plan, seed=0)
    assert list(faulted) == [(11.0, b"aa"), (12.0, b"bb")]


def test_symmetric_constructor():
    plan = FaultPlan.symmetric(drop_rate=0.1, description="both lanes")
    assert plan.dns.drop_rate == plan.flow.drop_rate == 0.1
    assert plan.description == "both lanes"
    assert dataclasses.asdict(plan.dns) == dataclasses.asdict(plan.flow)
