"""The chaos differential suite: every golden scenario × fault profile
× engine, watchdogged.

Three guarantees per cell of the matrix:

* the *same* faulted byte stream yields *identical* sorted output rows
  from every engine (threaded, sharded, async, and async with the
  snapshot lifecycle enabled) — perturbation happens before the
  engines, so engine parity must survive hostile input;
* every report is accounting-invariant-clean
  (:mod:`repro.core.invariants`) — loss may happen, silent loss may
  not;
* no run hangs: every engine run sits behind
  :func:`call_with_deadline`, so a deadlock is a named test failure,
  not a CI-level timeout.

Seed reproducibility is asserted at the matrix edge: re-applying the
same ``(plan, seed)`` to the same capture must reproduce the faulted
frame list bit-for-bit.
"""

import io
import pathlib

import pytest

from repro.core.config import EngineConfig, FlowDNSConfig
from repro.core.invariants import assert_invariants, call_with_deadline
from repro.replay import (
    FAULT_PROFILES,
    SCENARIOS,
    FaultInjector,
    load_capture,
    replay_capture,
)

GOLDEN_DIR = pathlib.Path(__file__).parent / "data" / "golden"

#: One deterministic seed for the whole matrix: any failure reproduces
#: with `FaultInjector(FAULT_PROFILES[profile], seed=CHAOS_SEED)`.
#: Chosen so every profile actually perturbs every golden scenario
#: (both lanes share one derived draw sequence per seed, so an unlucky
#: seed would zero a low-rate profile across the whole corpus at once).
CHAOS_SEED = 42

#: Hard per-run deadline. Generous (the runs take well under a second);
#: its job is turning a hang into a named failure.
RUN_DEADLINE = 120.0

#: Report fields every engine must agree on under faults. (Unlike the
#: clean differential, `overwrites` is excluded: duplicated/reordered
#: DNS frames make the sharded engine's broadcast re-count legitimately
#: diverge on ties.)
COMPARABLE_FIELDS = (
    "matched_flows",
    "flow_records",
    "dns_records",
    "total_bytes",
    "correlated_bytes",
)


def _rows(sink: io.StringIO):
    return sorted(
        line for line in sink.getvalue().splitlines()
        if line and not line.startswith("#")
    )


def _run_engine(frames, engine, label, config=None, num_shards=None):
    sink = io.StringIO()
    report = call_with_deadline(
        lambda: replay_capture(
            frames,
            engine=engine,
            config=config if config is not None else FlowDNSConfig(),
            sink=sink,
            num_shards=num_shards,
        ),
        timeout=RUN_DEADLINE,
        label=label,
    )
    rows = _rows(sink)
    assert_invariants(report, rows=len(rows))
    return report, rows


def _faulted_frames(scenario: str, profile: str):
    capture = load_capture(str(GOLDEN_DIR / f"{scenario}.fdc"))
    injector = FaultInjector(FAULT_PROFILES[profile], seed=CHAOS_SEED)
    frames = injector.apply(capture)
    # Seed reproducibility: the perturbed stream is a pure function of
    # (capture, plan, seed) — bit-for-bit.
    again = FaultInjector(FAULT_PROFILES[profile], seed=CHAOS_SEED).apply(capture)
    assert frames == again, "same fault seed must reproduce the identical stream"
    return frames, injector


class TestChaosDifferential:
    @pytest.mark.parametrize("profile", sorted(FAULT_PROFILES))
    @pytest.mark.parametrize("scenario", sorted(SCENARIOS))
    def test_engines_agree_under_faults(self, scenario, profile, tmp_path):
        frames, injector = _faulted_frames(scenario, profile)
        # The injector must have actually perturbed something on every
        # profile (otherwise the matrix silently tests the clean path).
        touched = sum(
            s.dropped + s.duplicated + s.reordered + s.corrupted
            + s.truncated + s.stalled
            for s in injector.stats.values()
        )
        active_skew = any(
            lane.clock_skew != 0.0
            for lane in (FAULT_PROFILES[profile].dns, FAULT_PROFILES[profile].flow)
        )
        assert touched > 0 or active_skew, (
            f"profile {profile!r} perturbed nothing on {scenario!r}"
        )

        label = f"{scenario}×{profile}"
        baseline, baseline_rows = _run_engine(
            frames, "threaded", f"threaded:{label}"
        )
        legs = [
            ("sharded", None, {"num_shards": 2}),
            ("async", None, {}),
            (
                "async",
                EngineConfig(
                    flowdns=FlowDNSConfig(),
                    snapshot_path=str(tmp_path / "chaos-snap.bin"),
                    snapshot_interval=3600.0,
                ),
                {},
            ),
        ]
        for engine, config, kwargs in legs:
            tag = "async+snapshots" if config is not None else engine
            report, rows = _run_engine(
                frames, engine, f"{tag}:{label}", config=config, **kwargs
            )
            assert rows == baseline_rows, (
                f"{tag} rows diverged from threaded on {label}"
            )
            for fieldname in COMPARABLE_FIELDS:
                assert getattr(report, fieldname) == getattr(baseline, fieldname), (
                    f"{tag} {fieldname} diverged on {label}: "
                    f"{getattr(report, fieldname)!r} != "
                    f"{getattr(baseline, fieldname)!r}"
                )


class TestChaosEdgeCases:
    def test_total_flow_loss_stays_clean(self):
        """Dropping every flow frame leaves zero rows — and a clean,
        non-hanging report from every engine."""
        from repro.replay import FaultPlan, LaneFaults

        capture = load_capture(str(GOLDEN_DIR / "two-site.fdc"))
        plan = FaultPlan(flow=LaneFaults(drop_rate=1.0))
        frames = FaultInjector(plan, seed=0).apply(capture)
        for engine, shards in (("threaded", None), ("sharded", 2), ("async", None)):
            report, rows = _run_engine(
                frames, engine, f"{engine}:total-flow-loss", num_shards=shards
            )
            assert rows == []
            assert report.flow_records == 0
            assert report.dns_records > 0

    def test_zero_length_truncation_replays_everywhere(self):
        """truncate_rate=1.0 produces zero-length frames on both lanes;
        the capture codec and every decode path must account for them
        rather than choke."""
        from repro.replay import FaultPlan

        capture = load_capture(str(GOLDEN_DIR / "malformed.fdc"))
        plan = FaultPlan.symmetric(truncate_rate=1.0)
        frames = FaultInjector(plan, seed=0).apply(capture)
        assert any(len(f.payload) == 0 for f in frames)
        baseline, baseline_rows = _run_engine(
            frames, "threaded", "threaded:all-truncated"
        )
        for engine, shards in (("sharded", 2), ("async", None)):
            report, rows = _run_engine(
                frames, engine, f"{engine}:all-truncated", num_shards=shards
            )
            assert rows == baseline_rows

    def test_faulted_capture_round_trips_through_disk(self, tmp_path):
        """A faulted frame list survives the capture codec, so chaos
        streams can be persisted and replayed like any capture."""
        from repro.replay import write_capture

        capture = load_capture(str(GOLDEN_DIR / "bursts.fdc"))
        frames = FaultInjector(
            FAULT_PROFILES["everything"], seed=CHAOS_SEED
        ).apply(capture)
        path = str(tmp_path / "faulted.fdc")
        write_capture(path, frames)
        assert load_capture(path) == frames
        direct, direct_rows = _run_engine(frames, "async", "async:in-memory")
        from_disk, disk_rows = _run_engine(path, "async", "async:from-disk")
        assert disk_rows == direct_rows
        assert from_disk.flow_records == direct.flow_records
