"""Tests for the deterministic simulation engine."""

import io

import pytest

from repro.core.config import FlowDNSConfig
from repro.core.simulation import SimulationEngine
from repro.core.variants import Variant, config_for
from repro.dns.rr import RRType
from repro.dns.stream import DnsRecord
from repro.netflow.records import FlowRecord


def _dns(ts, query, rtype, ttl, answer):
    return DnsRecord(ts, query, rtype, ttl, answer)


def _flow(ts, src, bytes_=100):
    return FlowRecord(ts=ts, src_ip=src, dst_ip="100.64.0.1", bytes_=bytes_)


def _basic_streams():
    dns = [
        _dns(10.0, "svc.example", RRType.CNAME, 600, "edge.cdn.net"),
        _dns(10.0, "edge.cdn.net", RRType.A, 60, "10.1.1.1"),
        _dns(20.0, "other.example", RRType.A, 120, "10.2.2.2"),
    ]
    flows = [
        _flow(30.0, "10.1.1.1", 1000),
        _flow(31.0, "10.2.2.2", 500),
        _flow(32.0, "172.16.0.9", 700),  # never resolved
    ]
    return dns, flows


class TestBasicRun:
    def test_correlation_accounting(self):
        dns, flows = _basic_streams()
        report = SimulationEngine(FlowDNSConfig(), sample_interval=1000.0).run(dns, flows)
        assert report.flow_records == 3
        assert report.dns_records == 3
        assert report.matched_flows == 2
        assert report.total_bytes == 2200
        assert report.correlated_bytes == 1500

    def test_deterministic_across_runs(self):
        dns, flows = _basic_streams()
        r1 = SimulationEngine(FlowDNSConfig()).run(list(dns), list(flows))
        r2 = SimulationEngine(FlowDNSConfig()).run(list(dns), list(flows))
        assert r1.correlated_bytes == r2.correlated_bytes
        assert r1.chain_lengths == r2.chain_lengths

    def test_empty_streams(self):
        report = SimulationEngine(FlowDNSConfig()).run([], [])
        assert report.samples == []
        assert report.correlation_rate == 0.0

    def test_dns_before_flow_at_same_timestamp(self):
        dns = [_dns(10.0, "x.example", RRType.A, 60, "10.9.9.9")]
        flows = [_flow(10.0, "10.9.9.9")]
        report = SimulationEngine(FlowDNSConfig()).run(dns, flows)
        assert report.matched_flows == 1

    def test_output_rows_written(self):
        sink = io.StringIO()
        dns, flows = _basic_streams()
        SimulationEngine(FlowDNSConfig(), sink=sink).run(dns, flows)
        rows = [line for line in sink.getvalue().splitlines() if not line.startswith("#")]
        assert len(rows) == 3

    def test_on_result_hook(self):
        seen = []
        dns, flows = _basic_streams()
        SimulationEngine(FlowDNSConfig(), on_result=seen.append).run(dns, flows)
        assert len(seen) == 3
        assert sum(1 for r in seen if r.matched) == 2


class TestSampling:
    def test_interval_samples_emitted(self):
        dns = [_dns(float(i), f"n{i}.example", RRType.A, 60, f"10.0.{i // 250}.{i % 250 + 1}")
               for i in range(0, 1000, 2)]
        flows = [_flow(float(i) + 0.5, "10.0.0.1", 10) for i in range(0, 1000, 2)]
        engine = SimulationEngine(FlowDNSConfig(), sample_interval=100.0)
        report = engine.run(dns, flows)
        assert len(report.samples) >= 9
        for sample in report.samples[:-1]:
            assert sample.t_end - sample.t_start == pytest.approx(100.0)
        # The final sample may be a partial interval ending at the last record.
        last = report.samples[-1]
        assert 0.0 < last.t_end - last.t_start <= 100.0

    def test_write_delay_bounded_by_flush_interval(self):
        dns = [_dns(0.0, "x.example", RRType.A, 60, "10.1.1.1")]
        flows = [_flow(float(t), "10.1.1.1") for t in range(0, 500, 5)]
        engine = SimulationEngine(
            FlowDNSConfig(), sample_interval=1000.0, write_flush_interval=30.0
        )
        report = engine.run(dns, flows)
        assert 0.0 < report.max_write_delay <= 45.0

    def test_memory_tracks_entries(self):
        dns = [_dns(float(i), f"n{i}.example", RRType.A, 60, f"10.{i // 250}.{(i % 250) + 1}.1")
               for i in range(500)]
        engine = SimulationEngine(FlowDNSConfig(), sample_interval=100.0)
        report = engine.run(dns, [])
        entries = [s.map_entries for s in report.samples]
        assert entries == sorted(entries)  # grows while nothing clears


class TestRotationInSimulation:
    def test_clear_up_loses_very_old_records(self):
        config = FlowDNSConfig()
        dns = [_dns(0.0, "old.example", RRType.A, 60, "10.1.1.1")]
        # Flow arrives 3 clear-up intervals later; record must be gone.
        flows = [_flow(3 * 3600.0 + 100.0, "10.1.1.1")]
        # Interleave dummy DNS to drive the clear-up clock.
        driver = [
            _dns(t, f"d{t}.example", RRType.A, 60, "10.8.8.8")
            for t in range(600, 4 * 3600, 600)
        ]
        report = SimulationEngine(config).run(sorted(dns + driver, key=lambda r: r.ts), flows)
        assert report.matched_flows == 0

    def test_no_clear_up_keeps_very_old_records(self):
        config = config_for(Variant.NO_CLEAR_UP)
        dns = [_dns(0.0, "old.example", RRType.A, 60, "10.1.1.1")]
        driver = [
            _dns(t, f"d{t}.example", RRType.A, 60, "10.8.8.8")
            for t in range(600, 4 * 3600, 600)
        ]
        flows = [_flow(3 * 3600.0 + 100.0, "10.1.1.1")]
        report = SimulationEngine(config).run(sorted(dns + driver, key=lambda r: r.ts), flows)
        assert report.matched_flows == 1

    def test_rotation_keeps_previous_interval(self):
        config = FlowDNSConfig()
        dns = [_dns(0.0, "prev.example", RRType.A, 60, "10.1.1.1")]
        driver = [_dns(3700.0, "d.example", RRType.A, 60, "10.8.8.8")]
        flows = [_flow(3800.0, "10.1.1.1")]
        report = SimulationEngine(config).run(dns + driver, flows)
        assert report.matched_flows == 1

    def test_no_rotation_loses_previous_interval(self):
        config = config_for(Variant.NO_ROTATION)
        dns = [_dns(0.0, "prev.example", RRType.A, 60, "10.1.1.1")]
        driver = [_dns(3700.0, "d.example", RRType.A, 60, "10.8.8.8")]
        flows = [_flow(3800.0, "10.1.1.1")]
        report = SimulationEngine(config).run(dns + driver, flows)
        assert report.matched_flows == 0

    def test_long_hashmap_keeps_long_ttl_record(self):
        config = FlowDNSConfig()
        dns = [_dns(0.0, "long.example", RRType.A, 86400, "10.1.1.1")]
        driver = [
            _dns(t, f"d{t}.example", RRType.A, 60, "10.8.8.8")
            for t in range(600, 6 * 3600, 600)
        ]
        flows = [_flow(5 * 3600.0, "10.1.1.1")]
        report = SimulationEngine(config).run(sorted(dns + driver, key=lambda r: r.ts), flows)
        assert report.matched_flows == 1

    def test_no_long_loses_long_ttl_record(self):
        config = config_for(Variant.NO_LONG)
        dns = [_dns(0.0, "long.example", RRType.A, 86400, "10.1.1.1")]
        driver = [
            _dns(t, f"d{t}.example", RRType.A, 60, "10.8.8.8")
            for t in range(600, 6 * 3600, 600)
        ]
        flows = [_flow(5 * 3600.0, "10.1.1.1")]
        report = SimulationEngine(config).run(sorted(dns + driver, key=lambda r: r.ts), flows)
        assert report.matched_flows == 0


class TestExactTtlInSimulation:
    def test_exact_ttl_respects_record_ttl(self):
        config = config_for(Variant.EXACT_TTL)
        dns = [_dns(0.0, "x.example", RRType.A, 60, "10.1.1.1")]
        flows = [_flow(30.0, "10.1.1.1"), _flow(120.0, "10.1.1.1")]
        report = SimulationEngine(config).run(dns, flows)
        assert report.matched_flows == 1  # the 120 s flow is past TTL

    def test_overwrites_counted(self):
        dns = [
            _dns(0.0, "first.example", RRType.A, 60, "10.1.1.1"),
            _dns(1.0, "second.example", RRType.A, 60, "10.1.1.1"),
        ]
        report = SimulationEngine(FlowDNSConfig()).run(dns, [])
        assert report.overwrites == 1
