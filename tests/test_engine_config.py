"""EngineConfig: construction, normalisation, and CLI flag interpretation.

The PR-6 API contract: every engine constructor accepts an EngineConfig
(or a bare FlowDNSConfig, or None), and *all* per-engine CLI flag
validation lives in ``EngineConfig.from_args`` — presence-based, with no
sentinel machinery left in ``cli.py``.
"""

import argparse

import pytest

from repro.core.config import (
    DEFAULT_FILL_TIMEOUT,
    DEFAULT_FLOW_PORT,
    DEFAULT_LIVE_HOST,
    EngineConfig,
    FlowDNSConfig,
)
from repro.util.errors import ConfigError


def ns(**kw):
    """An argparse-like namespace with None for anything unset."""
    return argparse.Namespace(**kw)


class TestOf:
    def test_none_gives_defaults(self):
        ec = EngineConfig.of(None)
        assert isinstance(ec.flowdns, FlowDNSConfig)
        assert ec.shards is None
        assert ec.fill_timeout == DEFAULT_FILL_TIMEOUT
        assert ec.ingest_workers == 1

    def test_flowdns_config_is_wrapped(self):
        fc = FlowDNSConfig(num_split=3)
        ec = EngineConfig.of(fc)
        assert ec.flowdns is fc

    def test_engine_config_passes_through(self):
        ec = EngineConfig(shards=2)
        assert EngineConfig.of(ec) is ec

    def test_replace_returns_modified_copy(self):
        ec = EngineConfig()
        ec2 = ec.replace(ingest_workers=4)
        assert ec2.ingest_workers == 4
        assert ec.ingest_workers == 1

    @pytest.mark.parametrize("kw", [
        {"shards": 0},
        {"fill_timeout": -1.0},
        {"ingest_workers": 0},
        {"duration": -1.0},
        {"recv_buffer_bytes": -1},
        {"speed": 0.0},
    ])
    def test_invalid_fields_rejected(self, kw):
        with pytest.raises(ConfigError):
            EngineConfig(**kw)


class TestEnginesAcceptEngineConfig:
    """All three live engine constructors take EngineConfig directly."""

    def test_threaded(self):
        from repro.core.engine import ThreadedEngine

        ec = EngineConfig(flowdns=FlowDNSConfig(num_split=4))
        engine = ThreadedEngine(ec)
        assert engine.engine_config is ec
        assert engine.config.num_split == 4

    def test_sharded_shards_come_from_config(self):
        from repro.core.sharded import ShardedEngine

        engine = ShardedEngine(EngineConfig(shards=3))
        assert engine.num_shards == 3
        # An explicit num_shards kwarg still wins over the config field.
        engine = ShardedEngine(EngineConfig(shards=3), num_shards=2)
        assert engine.num_shards == 2

    def test_async(self):
        from repro.core.async_engine import AsyncEngine

        ec = EngineConfig(flowdns=FlowDNSConfig(num_split=5))
        engine = AsyncEngine(ec)
        assert engine.engine_config is ec
        assert engine.config.num_split == 5

    @pytest.mark.parametrize("name", ["simulation", "threaded", "sharded", "async"])
    def test_engine_for_normalises(self, name):
        from repro.core.variants import engine_for

        engine = engine_for(name, config=EngineConfig(flowdns=FlowDNSConfig(
            num_split=7), shards=1))
        assert engine.config.num_split == 7

    def test_bare_flowdns_config_still_works(self):
        from repro.core.engine import ThreadedEngine

        fc = FlowDNSConfig(num_split=2)
        engine = ThreadedEngine(fc)
        assert engine.config is fc
        assert engine.engine_config.flowdns is fc


class TestFromArgs:
    """The CLI flag matrix, exercised without argparse."""

    def _live_ns(self, **kw):
        base = dict(host=None, flow_port=None, dns_port=None, duration=None,
                    num_split=10, ingest_workers=None, capture=None)
        base.update(kw)
        return ns(**base)

    def test_serve_defaults(self):
        ec = EngineConfig.from_args(self._live_ns(), "serve")
        assert ec.host == DEFAULT_LIVE_HOST
        assert ec.flow_port == DEFAULT_FLOW_PORT
        assert ec.duration == 0.0
        assert ec.ingest_workers == 1

    def test_capture_default_duration_is_bounded(self):
        ec = EngineConfig.from_args(
            self._live_ns(scenario=None, seed=None), "capture"
        )
        assert ec.duration == 60.0

    def test_shards_rejected_off_sharded_engine(self):
        args = ns(engine="threaded", shards=2, num_split=10)
        with pytest.raises(ConfigError, match="--shards only applies"):
            EngineConfig.from_args(args, "replay")

    def test_shards_accepted_on_sharded_engine(self):
        args = ns(engine="sharded", shards=2, num_split=10)
        assert EngineConfig.from_args(args, "replay").shards == 2

    def test_shards_lower_bound(self):
        args = ns(engine="sharded", shards=0, num_split=10)
        with pytest.raises(ConfigError, match="at least 1"):
            EngineConfig.from_args(args, "replay")

    def test_fill_timeout_rejected_off_threaded_engine(self):
        args = ns(engine="async", fill_timeout=5.0, num_split=10)
        with pytest.raises(ConfigError, match="--fill-timeout only applies"):
            EngineConfig.from_args(args, "replay")

    def test_fill_timeout_accepted_on_threaded_engine(self):
        args = ns(engine="threaded", fill_timeout=5.0, num_split=10)
        assert EngineConfig.from_args(args, "replay").fill_timeout == 5.0

    def test_speed_requires_realtime_even_at_default_value(self):
        # Presence-based: --speed 1.0 without --realtime is still an
        # explicitly-passed flag the run would ignore.
        args = ns(engine="threaded", speed=1.0, realtime=False, num_split=10)
        with pytest.raises(ConfigError, match="--realtime"):
            EngineConfig.from_args(args, "replay")

    def test_speed_with_realtime_accepted(self):
        args = ns(engine="threaded", speed=2.0, realtime=True, num_split=10)
        ec = EngineConfig.from_args(args, "replay")
        assert ec.speed == 2.0 and ec.realtime is True

    def test_nonpositive_speed_rejected(self):
        args = ns(engine="threaded", speed=-1.0, realtime=True, num_split=10)
        with pytest.raises(ConfigError, match="--speed must be positive"):
            EngineConfig.from_args(args, "replay")

    def test_ingest_workers_lower_bound(self):
        with pytest.raises(ConfigError, match="--ingest-workers"):
            EngineConfig.from_args(self._live_ns(ingest_workers=0), "serve")

    def test_ingest_workers_incompatible_with_capture(self):
        args = self._live_ns(ingest_workers=2, capture="tee.fdc")
        with pytest.raises(ConfigError, match="--capture cannot tee"):
            EngineConfig.from_args(args, "serve")

    def test_scenario_rejects_explicit_live_flags(self):
        args = self._live_ns(scenario="bursts", seed=None, duration=5.0)
        with pytest.raises(ConfigError, match="--duration only applies"):
            EngineConfig.from_args(args, "capture")

    def test_seed_requires_scenario(self):
        args = self._live_ns(scenario=None, seed=42)
        with pytest.raises(ConfigError, match="--seed only applies"):
            EngineConfig.from_args(args, "capture")

    def test_exact_ttl_reaches_flowdns_config(self):
        args = ns(engine="threaded", num_split=10, exact_ttl=True)
        assert EngineConfig.from_args(args, "replay").flowdns.exact_ttl is True
