"""Tests for storage snapshot/restore."""

import io

import pytest

from repro.core.config import FlowDNSConfig
from repro.core.storage_adapter import DnsStorage
from repro.dns.rr import RRType
from repro.dns.stream import DnsRecord
from repro.storage.snapshot import dump_storage, load_storage
from repro.util.errors import ParseError


def _filled_storage():
    storage = DnsStorage(FlowDNSConfig())
    records = [
        DnsRecord(0.0, "a.example", RRType.A, 60, "10.1.1.1"),
        DnsRecord(0.0, "long.example", RRType.A, 86400, "10.2.2.2"),
        DnsRecord(0.0, "www.svc.com", RRType.CNAME, 600, "edge.cdn.net"),
    ]
    for rec in records:
        storage.add_record(rec)
    # Force one rotation so the inactive tier is populated too.
    storage.ip_bank.force_clear_up()
    storage.add_record(DnsRecord(10.0, "b.example", RRType.A, 60, "10.3.3.3"))
    return storage


class TestRoundTrip:
    def test_dump_and_restore_preserves_entries(self):
        original = _filled_storage()
        buffer = io.StringIO()
        written = dump_storage(original, buffer)
        assert written == original.total_entries()

        restored = DnsStorage(FlowDNSConfig())
        buffer.seek(0)
        loaded = load_storage(restored, buffer)
        assert loaded == original.total_entries()
        assert restored.entry_counts() == original.entry_counts()

    def test_restored_lookups_work_across_tiers(self):
        original = _filled_storage()
        buffer = io.StringIO()
        dump_storage(original, buffer)
        restored = DnsStorage(FlowDNSConfig())
        buffer.seek(0)
        load_storage(restored, buffer)
        # Active tier entry.
        assert restored.lookup_ip("10.3.3.3", now=20.0) == "b.example"
        # Inactive tier entry (rotated before dump).
        assert restored.lookup_ip("10.1.1.1", now=20.0) == "a.example"
        # Long tier entry.
        assert restored.lookup_ip("10.2.2.2", now=20.0) == "long.example"
        # CNAME bank.
        assert restored.lookup_cname("edge.cdn.net", now=20.0) == "www.svc.com"

    def test_clear_up_clock_preserved(self):
        original = DnsStorage(FlowDNSConfig())
        original.add_record(DnsRecord(1000.0, "a.example", RRType.A, 60, "10.1.1.1"))
        buffer = io.StringIO()
        dump_storage(original, buffer)
        restored = DnsStorage(FlowDNSConfig())
        buffer.seek(0)
        load_storage(restored, buffer)
        # A put within the same interval must NOT trigger a rotation.
        restored.add_record(DnsRecord(2000.0, "b.example", RRType.A, 60, "10.2.2.2"))
        assert restored.ip_bank.stats.rotations == 0
        # One past the interval must.
        restored.add_record(DnsRecord(5000.0, "c.example", RRType.A, 60, "10.3.3.3"))
        assert restored.ip_bank.stats.rotations == 1


class TestErrors:
    def test_exact_ttl_storage_rejected(self):
        storage = DnsStorage(FlowDNSConfig(exact_ttl=True))
        with pytest.raises(ParseError):
            dump_storage(storage, io.StringIO())
        with pytest.raises(ParseError):
            load_storage(storage, io.StringIO("{}"))

    def test_bad_json_rejected(self):
        storage = DnsStorage(FlowDNSConfig())
        with pytest.raises(ParseError):
            load_storage(storage, io.StringIO("{broken"))

    def test_wrong_version_rejected(self):
        storage = DnsStorage(FlowDNSConfig())
        with pytest.raises(ParseError):
            load_storage(storage, io.StringIO('{"version": 99}'))

    def test_split_mismatch_rejected(self):
        original = _filled_storage()
        buffer = io.StringIO()
        dump_storage(original, buffer)
        buffer.seek(0)
        incompatible = DnsStorage(FlowDNSConfig(num_split=3))
        with pytest.raises(ParseError):
            load_storage(incompatible, buffer)
