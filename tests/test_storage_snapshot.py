"""Tests for storage snapshot/restore."""

import io
import os

import pytest

from repro.core.config import FlowDNSConfig
from repro.core.storage_adapter import DnsStorage
from repro.dns.rr import RRType
from repro.dns.stream import DnsRecord
from repro.storage.snapshot import (
    dump_storage,
    load_snapshot,
    load_storage,
    save_snapshot,
    snapshot_saved_at,
)
from repro.util.errors import ParseError


def _filled_storage():
    storage = DnsStorage(FlowDNSConfig())
    records = [
        DnsRecord(0.0, "a.example", RRType.A, 60, "10.1.1.1"),
        DnsRecord(0.0, "long.example", RRType.A, 86400, "10.2.2.2"),
        DnsRecord(0.0, "www.svc.com", RRType.CNAME, 600, "edge.cdn.net"),
    ]
    for rec in records:
        storage.add_record(rec)
    # Force one rotation so the inactive tier is populated too.
    storage.ip_bank.force_clear_up()
    storage.add_record(DnsRecord(10.0, "b.example", RRType.A, 60, "10.3.3.3"))
    return storage


class TestRoundTrip:
    def test_dump_and_restore_preserves_entries(self):
        original = _filled_storage()
        buffer = io.StringIO()
        written = dump_storage(original, buffer)
        assert written == original.total_entries()

        restored = DnsStorage(FlowDNSConfig())
        buffer.seek(0)
        loaded = load_storage(restored, buffer)
        assert loaded == original.total_entries()
        assert restored.entry_counts() == original.entry_counts()

    def test_restored_lookups_work_across_tiers(self):
        original = _filled_storage()
        buffer = io.StringIO()
        dump_storage(original, buffer)
        restored = DnsStorage(FlowDNSConfig())
        buffer.seek(0)
        load_storage(restored, buffer)
        # Active tier entry.
        assert restored.lookup_ip("10.3.3.3", now=20.0) == "b.example"
        # Inactive tier entry (rotated before dump).
        assert restored.lookup_ip("10.1.1.1", now=20.0) == "a.example"
        # Long tier entry.
        assert restored.lookup_ip("10.2.2.2", now=20.0) == "long.example"
        # CNAME bank.
        assert restored.lookup_cname("edge.cdn.net", now=20.0) == "www.svc.com"

    def test_clear_up_clock_preserved(self):
        original = DnsStorage(FlowDNSConfig())
        original.add_record(DnsRecord(1000.0, "a.example", RRType.A, 60, "10.1.1.1"))
        buffer = io.StringIO()
        dump_storage(original, buffer)
        restored = DnsStorage(FlowDNSConfig())
        buffer.seek(0)
        load_storage(restored, buffer)
        # A put within the same interval must NOT trigger a rotation.
        restored.add_record(DnsRecord(2000.0, "b.example", RRType.A, 60, "10.2.2.2"))
        assert restored.ip_bank.stats.rotations == 0
        # One past the interval must.
        restored.add_record(DnsRecord(5000.0, "c.example", RRType.A, 60, "10.3.3.3"))
        assert restored.ip_bank.stats.rotations == 1


class TestErrors:
    def test_exact_ttl_storage_rejected(self):
        storage = DnsStorage(FlowDNSConfig(exact_ttl=True))
        with pytest.raises(ParseError):
            dump_storage(storage, io.StringIO())
        with pytest.raises(ParseError):
            load_storage(storage, io.StringIO("{}"))

    def test_bad_json_rejected(self):
        storage = DnsStorage(FlowDNSConfig())
        with pytest.raises(ParseError):
            load_storage(storage, io.StringIO("{broken"))

    def test_wrong_version_rejected(self):
        storage = DnsStorage(FlowDNSConfig())
        with pytest.raises(ParseError):
            load_storage(storage, io.StringIO('{"version": 99}'))

    def test_split_mismatch_rejected(self):
        original = _filled_storage()
        buffer = io.StringIO()
        dump_storage(original, buffer)
        buffer.seek(0)
        incompatible = DnsStorage(FlowDNSConfig(num_split=3))
        with pytest.raises(ParseError):
            load_storage(incompatible, buffer)

    def test_clear_up_interval_mismatch_rejected(self):
        original = _filled_storage()
        buffer = io.StringIO()
        dump_storage(original, buffer)
        buffer.seek(0)
        incompatible = DnsStorage(FlowDNSConfig(a_clear_up_interval=123.0))
        with pytest.raises(ParseError, match="clear_up_interval"):
            load_storage(incompatible, buffer)


class TestAllOrNothing:
    """A failed restore must leave the target storage exactly as it was.

    The half-wipe failure mode this pins down: restore validates bank 1,
    wipes it, then discovers bank 2 is malformed — leaving a storage
    that is neither the old state nor the snapshot. Validation must
    complete over the *whole* document before any map is touched.
    """

    @staticmethod
    def _mangle(document_text: str) -> str:
        # Corrupt the SECOND bank only: a restore that mutates as it
        # validates would wipe the first bank before noticing.
        import json

        document = json.loads(document_text)
        document["name_cname"]["tiers"]["active"] = "not-a-list"
        return json.dumps(document)

    def test_failed_restore_leaves_target_untouched(self):
        target = _filled_storage()
        before_counts = target.entry_counts()
        donor = _filled_storage()
        buffer = io.StringIO()
        dump_storage(donor, buffer)
        with pytest.raises(ParseError):
            load_storage(target, io.StringIO(self._mangle(buffer.getvalue())))
        assert target.entry_counts() == before_counts
        # Lookups still resolve from the pre-restore state.
        assert target.lookup_ip("10.3.3.3", now=20.0) == "b.example"
        assert target.lookup_cname("edge.cdn.net", now=20.0) == "www.svc.com"

    def test_truncated_snapshot_leaves_target_untouched(self):
        target = _filled_storage()
        before_counts = target.entry_counts()
        buffer = io.StringIO()
        dump_storage(_filled_storage(), buffer)
        truncated = buffer.getvalue()[: len(buffer.getvalue()) // 2]
        with pytest.raises(ParseError):
            load_storage(target, io.StringIO(truncated))
        assert target.entry_counts() == before_counts

    def test_missing_bank_rejected_before_mutation(self):
        target = _filled_storage()
        before_counts = target.entry_counts()
        buffer = io.StringIO()
        dump_storage(_filled_storage(), buffer)
        import json

        document = json.loads(buffer.getvalue())
        del document["name_cname"]
        with pytest.raises(ParseError, match="name_cname"):
            load_storage(target, io.StringIO(json.dumps(document)))
        assert target.entry_counts() == before_counts


class TestSnapshotFiles:
    """The crash-safe path-level pair: save_snapshot / load_snapshot."""

    def test_file_round_trip(self, tmp_path):
        path = str(tmp_path / "state.json")
        original = _filled_storage()
        written = save_snapshot(original, path)
        assert written == original.total_entries()
        assert snapshot_saved_at(path) > 0.0
        restored = DnsStorage(FlowDNSConfig())
        assert load_snapshot(restored, path) == original.total_entries()
        assert restored.entry_counts() == original.entry_counts()
        assert restored.lookup_ip("10.3.3.3", now=20.0) == "b.example"

    def test_no_temp_file_left_behind(self, tmp_path):
        path = str(tmp_path / "state.json")
        save_snapshot(_filled_storage(), path)
        assert sorted(os.listdir(tmp_path)) == ["state.json"]

    def test_failed_write_preserves_previous_snapshot(self, tmp_path):
        path = str(tmp_path / "state.json")
        save_snapshot(_filled_storage(), path)
        before = open(path, encoding="utf-8").read()
        # An exact-TTL storage cannot be dumped: the write fails mid-way,
        # and the atomic-rename contract keeps the old file intact.
        with pytest.raises(ParseError):
            save_snapshot(DnsStorage(FlowDNSConfig(exact_ttl=True)), path)
        assert open(path, encoding="utf-8").read() == before
        assert sorted(os.listdir(tmp_path)) == ["state.json"]

    def test_missing_file_raises_oserror(self, tmp_path):
        with pytest.raises(OSError):
            load_snapshot(_filled_storage(), str(tmp_path / "absent.json"))

    def test_rotation_roundtrip_preserves_correlation_rows(self, tmp_path):
        """Fill → rotate → snapshot → restore: the restored storage
        correlates a flow corpus to byte-identical rows and reports the
        same final_map_entries as the original."""
        from repro.core.config import EngineConfig
        from repro.core.engine import ThreadedEngine
        from repro.core.pipeline import gated_flow_source
        from repro.netflow.records import FlowRecord

        records = [
            DnsRecord(float(i % 50), f"svc{i}.example", RRType.A, 300,
                      f"10.9.{i // 200}.{i % 200 + 1}")
            for i in range(400)
        ]
        flows = [
            FlowRecord(ts=60.0, src_ip=f"10.9.{i // 200}.{i % 200 + 1}",
                       dst_ip="100.64.0.1", bytes_=100 + i % 7)
            for i in range(400)
        ]

        storage = DnsStorage(FlowDNSConfig())
        for record in records:
            storage.add_record(record)
        storage.ip_bank.force_clear_up()
        storage.cname_bank.force_clear_up()
        path = str(tmp_path / "rotated.json")
        save_snapshot(storage, path)

        def correlate(store) -> str:
            sink = io.StringIO()
            engine = ThreadedEngine(EngineConfig(), sink=sink)
            engine.storage = store
            report = engine.run(
                [], [gated_flow_source(engine, flows, timeout=10.0)]
            )
            return sink.getvalue(), report

        rows_orig, report_orig = correlate(storage)
        restored = DnsStorage(FlowDNSConfig())
        load_snapshot(restored, path)
        rows_restored, report_restored = correlate(restored)
        assert sorted(rows_orig.splitlines()) == sorted(rows_restored.splitlines())
        assert report_orig.matched_flows == 400
        assert report_restored.matched_flows == 400
        assert report_orig.final_map_entries == report_restored.final_map_entries
