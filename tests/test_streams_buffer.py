"""Tests for repro.streams.buffer (the loss point of the whole system)."""

import threading

import pytest

from repro.streams.buffer import BoundedBuffer
from repro.util.errors import ConfigError, StreamClosed


class TestPushPop:
    def test_fifo_order(self):
        buf = BoundedBuffer(10)
        for i in range(5):
            buf.push(i)
        assert [buf.pop(timeout=0.01) for _ in range(5)] == [0, 1, 2, 3, 4]

    def test_pop_timeout_returns_none(self):
        assert BoundedBuffer(1).pop(timeout=0.01) is None

    def test_capacity_must_be_positive(self):
        with pytest.raises(ConfigError):
            BoundedBuffer(0)

    def test_len(self):
        buf = BoundedBuffer(10)
        buf.push_many(range(3))
        assert len(buf) == 3


class TestOverflowDrops:
    """Section 2: 'If that buffer overflows, the streams start to drop data.'"""

    def test_overflow_drops_incoming(self):
        buf = BoundedBuffer(3)
        results = [buf.push(i) for i in range(5)]
        assert results == [True, True, True, False, False]
        assert buf.stats.dropped == 2
        # Queued records are untouched by the drop.
        assert buf.pop(timeout=0.01) == 0

    def test_loss_rate(self):
        buf = BoundedBuffer(2)
        buf.push_many(range(10))
        assert buf.stats.offered == 10
        assert buf.stats.accepted == 2
        assert abs(buf.stats.loss_rate - 0.8) < 1e-9

    def test_no_loss_when_drained(self):
        buf = BoundedBuffer(4)
        for i in range(16):
            buf.push(i)
            buf.pop(timeout=0.01)
        assert buf.stats.loss_rate == 0.0

    def test_high_watermark(self):
        buf = BoundedBuffer(10)
        buf.push_many(range(7))
        buf.pop_batch(5)
        buf.push_many(range(3))
        assert buf.stats.high_watermark == 7

    def test_fill_fraction(self):
        buf = BoundedBuffer(4)
        buf.push_many(range(2))
        assert buf.fill_fraction == 0.5


class TestClose:
    def test_pop_after_close_drains_then_none(self):
        buf = BoundedBuffer(10)
        buf.push_many(range(2))
        buf.close()
        assert buf.pop() == 0
        assert buf.pop() == 1
        assert buf.pop() is None

    def test_push_after_close_raises(self):
        buf = BoundedBuffer(1)
        buf.close()
        with pytest.raises(StreamClosed):
            buf.push(1)

    def test_close_wakes_blocked_consumer(self):
        buf = BoundedBuffer(1)
        results = []

        def consumer():
            results.append(buf.pop(timeout=5.0))

        t = threading.Thread(target=consumer)
        t.start()
        buf.close()
        t.join(timeout=2.0)
        assert not t.is_alive()
        assert results == [None]


class TestConcurrency:
    def test_producer_consumer_counts(self):
        buf = BoundedBuffer(64)
        consumed = []

        def consumer():
            while True:
                item = buf.pop(timeout=0.5)
                if item is None:
                    return
                consumed.append(item)

        threads = [threading.Thread(target=consumer) for _ in range(4)]
        for t in threads:
            t.start()
        for i in range(1000):
            buf.push(i)
        buf.close()
        for t in threads:
            t.join(timeout=5.0)
        assert len(consumed) + buf.stats.dropped == 1000
        assert buf.stats.popped == len(consumed)

    def test_pop_batch(self):
        buf = BoundedBuffer(100)
        buf.push_many(range(10))
        assert buf.pop_batch(4) == [0, 1, 2, 3]
        assert buf.pop_batch(100) == [4, 5, 6, 7, 8, 9]
        assert buf.pop_batch(5) == []
