"""Tests for repro.util.clock."""

import time

import pytest

from repro.util.clock import MonotonicClock, SimClock, SystemClock


class TestSimClock:
    def test_starts_at_given_time(self):
        assert SimClock(100.0).now() == 100.0

    def test_default_start_is_zero(self):
        assert SimClock().now() == 0.0

    def test_advance_to_moves_forward(self):
        clock = SimClock()
        clock.advance_to(50.0)
        assert clock.now() == 50.0

    def test_advance_to_never_moves_backwards(self):
        clock = SimClock(100.0)
        clock.advance_to(10.0)
        assert clock.now() == 100.0

    def test_advance_to_same_time_is_noop(self):
        clock = SimClock(5.0)
        clock.advance_to(5.0)
        assert clock.now() == 5.0

    def test_advance_by_accumulates(self):
        clock = SimClock()
        clock.advance_by(10.0)
        clock.advance_by(2.5)
        assert clock.now() == 12.5

    def test_advance_by_negative_raises(self):
        with pytest.raises(ValueError):
            SimClock().advance_by(-1.0)

    def test_repr_mentions_time(self):
        assert "3.000" in repr(SimClock(3.0))


class TestMonotonicClock:
    def test_never_goes_backwards(self):
        clock = MonotonicClock()
        readings = [clock.now() for _ in range(50)]
        assert readings == sorted(readings)

    def test_tracks_monotonic_time(self):
        clock = MonotonicClock()
        before = time.monotonic()
        now = clock.now()
        after = time.monotonic()
        assert before <= now <= after


class TestSystemClock:
    def test_tracks_wall_time(self):
        clock = SystemClock()
        before = time.time()
        now = clock.now()
        after = time.time()
        assert before <= now <= after

    def test_advance_to_is_noop(self):
        clock = SystemClock()
        clock.advance_to(0.0)  # must not raise or affect anything
        assert clock.now() >= 0.0
