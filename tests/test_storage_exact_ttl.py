"""Tests for repro.storage.exact_ttl (the Appendix A.8 store)."""

import pytest

from repro.storage.exact_ttl import ExactTtlStore
from repro.util.errors import ConfigError


class TestExactExpiry:
    def test_live_record_found(self):
        store = ExactTtlStore()
        store.put(0, "1.1.1.1", "a.example", ttl=60, ts=100.0)
        assert store.lookup(0, "1.1.1.1", now=150.0) == "a.example"

    def test_expired_record_not_found(self):
        store = ExactTtlStore()
        store.put(0, "1.1.1.1", "a.example", ttl=60, ts=100.0)
        assert store.lookup(0, "1.1.1.1", now=161.0) is None
        assert store.stats.expired_on_read == 1

    def test_expiry_boundary_is_inclusive(self):
        """The A.8 condition: usable while TTL+ts >= now."""
        store = ExactTtlStore()
        store.put(0, "1.1.1.1", "a.example", ttl=60, ts=100.0)
        assert store.lookup(0, "1.1.1.1", now=160.0) == "a.example"

    def test_expired_on_read_removes_entry(self):
        store = ExactTtlStore()
        store.put(0, "1.1.1.1", "a.example", ttl=10, ts=0.0)
        store.lookup(0, "1.1.1.1", now=100.0)
        assert store.total_entries() == 0

    def test_validation(self):
        with pytest.raises(ConfigError):
            ExactTtlStore(num_splits=0)
        with pytest.raises(ConfigError):
            ExactTtlStore(sweep_interval=0)


class TestSweep:
    def test_sweep_removes_expired_only(self):
        store = ExactTtlStore()
        store.put(0, "old", "v", ttl=10, ts=0.0)
        store.put(0, "new", "v", ttl=1000, ts=0.0)
        scanned = store.sweep(now=500.0)
        assert scanned == 2
        assert store.total_entries() == 1
        assert store.stats.swept_entries == 1

    def test_maybe_sweep_respects_interval(self):
        store = ExactTtlStore(sweep_interval=60.0)
        store.put(0, "k", "v", ttl=1, ts=0.0)
        assert store.maybe_sweep(0.0) == 0  # arms the timer
        assert store.maybe_sweep(30.0) == 0
        assert store.maybe_sweep(61.0) == 1  # scanned one entry
        assert store.stats.sweeps == 1

    def test_sweep_cost_grows_with_map(self):
        """The A.8 failure driver: sweep scans everything, every time."""
        store = ExactTtlStore()
        for i in range(100):
            store.put(i, f"10.0.0.{i}", "v", ttl=10_000, ts=0.0)
        assert store.sweep(now=1.0) == 100
        assert store.sweep(now=2.0) == 100  # nothing expired, still 100 scanned
        assert store.stats.sweep_scanned == 200

    def test_entry_counts_shape(self):
        store = ExactTtlStore()
        store.put(0, "k", "v", ttl=100, ts=0.0)
        assert store.entry_counts() == {"active": 1, "inactive": 0, "long": 0}


class TestSplits:
    def test_labels_isolate_keys(self):
        store = ExactTtlStore(num_splits=2)
        store.put(0, "k", "v0", ttl=100, ts=0.0)
        store.put(1, "k", "v1", ttl=100, ts=0.0)
        assert store.lookup(0, "k", now=1.0) == "v0"
        assert store.lookup(1, "k", now=1.0) == "v1"

    def test_hits_misses_counted(self):
        store = ExactTtlStore()
        store.put(0, "k", "v", ttl=100, ts=0.0)
        store.lookup(0, "k", now=1.0)
        store.lookup(0, "absent", now=1.0)
        assert store.stats.hits == 1 and store.stats.misses == 1
