"""Tests for repro.dns.validation (the paper's Section 5 rules)."""

import pytest

from repro.dns.validation import (
    ViolationKind,
    check_domain,
    is_valid_domain,
    offending_characters,
)


class TestValidNames:
    @pytest.mark.parametrize(
        "name",
        [
            "example.com",
            "www.example.com",
            "a.b",
            "x1.y2.z3",
            "a-b.example.org",
            "WWW.EXAMPLE.COM",
            "example.com.",
        ],
    )
    def test_accepted(self, name):
        assert is_valid_domain(name)

    def test_root_is_valid(self):
        assert is_valid_domain(".")


class TestUnderscore:
    """The paper: '_' is the disallowed character in 87% of violations."""

    def test_underscore_rejected(self):
        assert not is_valid_domain("_dmarc.example.com")

    def test_underscore_reported(self):
        assert "_" in offending_characters("_sip.example.com")

    def test_violation_kind_is_bad_character(self):
        kinds = {v.kind for v in check_domain("_x.example.com")}
        assert ViolationKind.BAD_CHARACTER in kinds


class TestLengthRules:
    def test_label_64_bytes_rejected(self):
        assert not is_valid_domain("a" * 64 + ".com")

    def test_label_63_bytes_accepted(self):
        assert is_valid_domain("a" * 63 + ".com")

    def test_total_length_over_255_rejected(self):
        name = ".".join(["a" * 62] * 4) + ".example"  # > 255 on the wire
        violations = check_domain(name)
        assert any(v.kind == ViolationKind.NAME_TOO_LONG for v in violations)

    def test_total_length_under_255_accepted(self):
        name = ".".join(["a" * 30] * 6)
        assert is_valid_domain(name)


class TestCharacterRules:
    def test_digit_start_rejected(self):
        # The paper's rule 3: labels start with a letter.
        assert not is_valid_domain("4chan.org")

    def test_hyphen_interior_ok(self):
        assert is_valid_domain("my-site.example.com")

    def test_hyphen_at_end_rejected(self):
        violations = check_domain("bad-.example.com")
        assert any(v.kind == ViolationKind.BAD_END for v in violations)

    def test_hyphen_at_start_rejected(self):
        violations = check_domain("-bad.example.com")
        assert any(v.kind == ViolationKind.BAD_START for v in violations)

    @pytest.mark.parametrize("ch", ["!", "*", "/", "=", " "])
    def test_special_chars_rejected(self, ch):
        assert not is_valid_domain(f"ab{ch}cd.example.com")

    def test_multiple_bad_chars_all_reported(self):
        chars = offending_characters("a_b!c.example.com")
        assert "_" in chars and "!" in chars

    def test_empty_label_rejected(self):
        violations = check_domain("a..b.com")
        assert any(v.kind == ViolationKind.EMPTY_LABEL for v in violations)

    def test_digit_end_accepted(self):
        assert is_valid_domain("host1.example.com")


class TestViolationStr:
    def test_str_mentions_kind_and_label(self):
        violation = check_domain("_x.example.com")[0]
        text = str(violation)
        assert "bad-character" in text and "_x" in text
