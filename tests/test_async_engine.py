"""Tests for the asyncio engine: offline parity with the threaded engine,
live loopback ingest (NetFlow over UDP + DNS over TCP), bounded-buffer
backpressure accounting, and graceful drain-then-shutdown."""

import io
import socket
import threading
import time

import pytest

from engine_gates import gated_flows

from repro.core.async_engine import (
    AsyncBuffer,
    AsyncEngine,
    TcpDnsIngest,
    UdpFlowIngest,
)
from repro.core.config import FlowDNSConfig
from repro.core.engine import ThreadedEngine
from repro.dns.rr import RRType, a_record, cname_record
from repro.dns.stream import DnsRecord
from repro.dns.tcp import frame_messages
from repro.dns.wire import DnsMessage, Question, encode_message
from repro.netflow.exporter import FlowExporter
from repro.netflow.records import FlowRecord
from repro.netflow.udp import send_datagrams

#: The fixed "arrival time" the live DNS listener stamps messages with,
#: chosen inside the corpus' validity window so live and offline runs
#: store records at identical timestamps.
_CLOCK_TS = 5.0


def _dns_records():
    records = [
        DnsRecord(float(i % 40), f"svc{i % 60}.example", RRType.A, 300,
                  f"10.0.{(i % 60) // 30}.{(i % 60) % 30 + 1}")
        for i in range(600)
    ]
    records.append(DnsRecord(1.0, "svc0.example", RRType.CNAME, 600, "edge.cdn.net"))
    records.append(DnsRecord(1.0, "edge.cdn.net", RRType.A, 60, "10.9.9.9"))
    return records


def _flows(matched=900, unmatched=100):
    flows = [
        FlowRecord(ts=float(i % 40),
                   src_ip=f"10.0.{(i % 60) // 30}.{(i % 60) % 30 + 1}",
                   dst_ip="100.64.0.1", bytes_=100 + i % 13)
        for i in range(matched)
    ]
    flows += [
        FlowRecord(ts=float(i % 40), src_ip="172.16.0.9",
                   dst_ip="100.64.0.2", bytes_=37)
        for i in range(unmatched)
    ]
    flows.append(FlowRecord(ts=30.0, src_ip="10.9.9.9", dst_ip="100.64.0.3", bytes_=5))
    return flows


def _dns_wires(count=40):
    """Wire-format DNS messages whose records match `_wire_flows`."""
    wires = []
    for i in range(count):
        msg = DnsMessage()
        name = f"live{i}.example"
        msg.questions.append(Question(name, RRType.A))
        if i % 5 == 0:
            msg.answers.append(cname_record(name, f"edge{i}.cdn.net", 600))
            msg.answers.append(a_record(f"edge{i}.cdn.net", f"10.8.0.{i + 1}", 120))
        else:
            msg.answers.append(a_record(name, f"10.8.0.{i + 1}", 300))
        wires.append(encode_message(msg))
    return wires


def _wire_flows(count=40, extra_unmatched=10):
    flows = [
        FlowRecord(ts=10.0 + i % 20, src_ip=f"10.8.0.{i % count + 1}",
                   dst_ip="100.64.0.1", bytes_=50 + i % 7)
        for i in range(count * 4)
    ]
    flows += [
        FlowRecord(ts=12.0, src_ip="172.16.9.9", dst_ip="100.64.0.2", bytes_=11)
        for _ in range(extra_unmatched)
    ]
    return flows


def _assert_reports_equal(left, right):
    assert left.matched_flows == right.matched_flows
    assert left.flow_records == right.flow_records
    assert left.dns_records == right.dns_records
    assert left.total_bytes == right.total_bytes
    assert left.correlated_bytes == right.correlated_bytes
    assert left.chain_lengths == right.chain_lengths
    assert left.overwrites == right.overwrites
    assert left.final_map_entries == right.final_map_entries


def _rows(sink):
    return sorted(
        line for line in sink.getvalue().splitlines() if not line.startswith("#")
    )


class TestAsyncOffline:
    def test_offline_parity_with_threaded(self):
        """Same corpus, same counters, same rows as the threaded engine."""
        dns, flows = _dns_records(), _flows()
        threaded_sink, async_sink = io.StringIO(), io.StringIO()
        threaded = ThreadedEngine(FlowDNSConfig(), sink=threaded_sink)
        threaded_report = threaded.run([list(dns)], [gated_flows(threaded, flows)])
        async_report = AsyncEngine(FlowDNSConfig(), sink=async_sink).run(
            [list(dns)], [list(flows)], dns_first=True
        )
        assert async_report.variant_name == "async"
        assert async_report.flow_lane == "columnar"
        _assert_reports_equal(async_report, threaded_report)
        assert _rows(async_sink) == _rows(threaded_sink)

    def test_datagram_and_wire_tuple_items(self):
        """The async lanes accept the full stream-item mix."""
        msg = DnsMessage()
        msg.questions.append(Question("wire.example", RRType.A))
        msg.answers.append(cname_record("wire.example", "e.cdn.net", 300))
        msg.answers.append(a_record("e.cdn.net", "10.3.3.3", 60))
        wire = encode_message(msg)
        flows = [FlowRecord(ts=10.0, src_ip="10.3.3.3", dst_ip="100.64.0.1",
                            bytes_=500)]
        datagrams = list(FlowExporter(version=9, batch_size=10).export(flows))
        report = AsyncEngine(FlowDNSConfig()).run(
            [[(1.0, wire)]], [datagrams], dns_first=True
        )
        assert report.dns_records == 2
        assert report.matched_flows == 1
        assert report.chain_lengths.get(2) == 1

    def test_exact_ttl_mode_runs(self):
        report = AsyncEngine(FlowDNSConfig(exact_ttl=True)).run(
            [_dns_records()[:10]], [_flows(matched=20, unmatched=5)],
            dns_first=True,
        )
        assert report.flow_records == 26

    def test_empty_run_terminates(self):
        report = AsyncEngine(FlowDNSConfig()).run([[]], [[]])
        assert report.flow_records == 0
        assert report.dns_records == 0
        assert report.overall_loss_rate == 0.0


class TestAsyncLiveLoopback:
    def _run_live(self, config, dns_wires, flow_datagrams, expected_dns_records,
                  expected_flows, sink=None, flow_capacity=None):
        """Drive a live AsyncEngine over loopback sockets from this thread."""
        dns_ingest = TcpDnsIngest(clock=lambda: _CLOCK_TS)
        flow_ingest = UdpFlowIngest(capacity=flow_capacity)
        engine = AsyncEngine(config, sink=sink)
        result = {}

        def runner():
            result["report"] = engine.run([dns_ingest], [flow_ingest])

        thread = threading.Thread(target=runner, daemon=True)
        thread.start()
        dns_addr = dns_ingest.wait_ready()
        flow_addr = flow_ingest.wait_ready()

        # Phase 1: all DNS over one TCP connection, in framed chunks cut
        # at awkward boundaries; wait until the fill lane stored them.
        stream = frame_messages(dns_wires)
        with socket.create_connection(dns_addr, timeout=5.0) as conn:
            for i in range(0, len(stream), 777):
                conn.sendall(stream[i : i + 777])
        deadline = time.monotonic() + 20.0
        while engine.dns_records_seen < expected_dns_records:
            assert time.monotonic() < deadline, (
                f"DNS ingest stalled at {engine.dns_records_seen}"
            )
            time.sleep(0.01)

        # Phase 2: the NetFlow datagrams, lightly paced so loopback UDP
        # does not overrun the kernel buffer.
        for datagram in flow_datagrams:
            send_datagrams([datagram], flow_addr)
            time.sleep(0.001)
        deadline = time.monotonic() + 20.0
        while engine.flows_seen < expected_flows:
            assert time.monotonic() < deadline, (
                f"flow ingest stalled at {engine.flows_seen}"
            )
            time.sleep(0.01)

        engine.request_stop()
        thread.join(timeout=20.0)
        assert not thread.is_alive(), "async engine did not shut down"
        return result["report"], dns_ingest, flow_ingest

    def test_loopback_ingest_parity_with_threaded(self):
        """NetFlow-over-UDP + DNS-over-TCP through real loopback sockets
        produces the same report and rows as the threaded engine fed the
        identical corpus directly."""
        wires = _dns_wires()
        flows = _wire_flows()
        datagrams = list(FlowExporter(version=9, batch_size=24).export(flows))
        # Every message carries one A record; every fifth also a CNAME.
        expected_dns = len(wires) + len(wires) // 5
        live_sink = io.StringIO()
        report, dns_ingest, flow_ingest = self._run_live(
            FlowDNSConfig(), wires, datagrams,
            expected_dns_records=expected_dns,
            expected_flows=len(flows),
            sink=live_sink,
        )

        threaded_sink = io.StringIO()
        threaded = ThreadedEngine(FlowDNSConfig(), sink=threaded_sink)
        threaded_report = threaded.run(
            [[(_CLOCK_TS, w) for w in wires]],
            [gated_flows(threaded, list(datagrams))],
        )
        _assert_reports_equal(report, threaded_report)
        assert _rows(live_sink) == _rows(threaded_sink)

        # Live ingest counters surfaced in the report.
        assert report.ingest[dns_ingest.ingest_stats.name].received == len(wires)
        udp_stats = report.ingest[flow_ingest.ingest_stats.name]
        assert udp_stats.received == len(datagrams)
        assert udp_stats.dropped == 0
        assert report.overall_loss_rate == 0.0

    def test_stop_burst_race_loses_nothing_accepted(self):
        """Messages sent right before request_stop must either be dropped
        (counted) or fully processed — never accepted-then-lost. The
        listener awaits its connection handlers before the fill buffer
        closes, so every accepted message reaches storage."""
        wires = _dns_wires(count=30)  # one A record per message... plus CNAMEs
        wires = [w for i, w in enumerate(wires) if i % 5]  # A-only messages
        dns_ingest = TcpDnsIngest(clock=lambda: _CLOCK_TS)
        engine = AsyncEngine(FlowDNSConfig())
        result = {}
        thread = threading.Thread(
            target=lambda: result.update(report=engine.run([dns_ingest], [])),
            daemon=True,
        )
        thread.start()
        dns_addr = dns_ingest.wait_ready()
        with socket.create_connection(dns_addr, timeout=5.0) as conn:
            conn.sendall(frame_messages(wires))
            # Stop immediately: no waiting for the fill lane to catch up.
            engine.request_stop()
        thread.join(timeout=20.0)
        assert not thread.is_alive()
        stats = dns_ingest.ingest_stats
        report = result["report"]
        assert stats.accepted == report.dns_records
        assert stats.received == stats.accepted + stats.dropped

    def test_graceful_drain_on_stop(self):
        """request_stop drains buffered work before reporting: every
        ingested datagram's flows are correlated, none abandoned."""
        flows = _wire_flows(count=10, extra_unmatched=0)
        datagrams = list(FlowExporter(version=5, batch_size=20).export(flows))
        report, _dns, flow_ingest = self._run_live(
            FlowDNSConfig(), [], datagrams,
            expected_dns_records=0,
            expected_flows=len(flows),
        )
        assert report.flow_records == len(flows)
        assert flow_ingest.ingest_stats.accepted == len(datagrams)


class TestRequestStopIdempotency:
    """request_stop is safe from any thread, any number of times, at any
    point in the run's life: before start (latched), repeatedly during a
    run, while the drain is in flight, and after the loop is gone."""

    def _live_run_in_thread(self, engine, dns_sources, flow_sources):
        result = {}
        thread = threading.Thread(
            target=lambda: result.update(
                report=engine.run(dns_sources, flow_sources)
            ),
            daemon=True,
        )
        thread.start()
        return thread, result

    def test_stop_before_start_is_latched(self):
        """A stop requested before the loop exists must end the live run
        at startup instead of being lost (which would hang forever)."""
        ingest = TcpDnsIngest(clock=lambda: _CLOCK_TS)
        engine = AsyncEngine(FlowDNSConfig())
        engine.request_stop()
        engine.request_stop()  # latching twice is fine too
        thread, result = self._live_run_in_thread(engine, [ingest], [])
        thread.join(timeout=20.0)
        assert not thread.is_alive(), "latched stop was lost"
        assert result["report"].dns_records == 0

    def test_stop_before_start_does_not_break_offline_run(self):
        """A latched stop must not truncate a finite-source run: offline
        sources drain fully regardless."""
        engine = AsyncEngine(FlowDNSConfig())
        engine.request_stop()
        flows = _flows(matched=30, unmatched=5)
        report = engine.run([_dns_records()[:50]], [flows], dns_first=True)
        assert report.dns_records == 50
        assert report.flow_records == len(flows)

    def test_double_stop_from_multiple_threads(self):
        """Concurrent and repeated stops during a live run neither hang
        nor double-report."""
        wires = _dns_wires(count=10)
        expected = len(wires) + len(wires) // 5
        ingest = TcpDnsIngest(clock=lambda: _CLOCK_TS)
        engine = AsyncEngine(FlowDNSConfig())
        thread, result = self._live_run_in_thread(engine, [ingest], [])
        dns_addr = ingest.wait_ready()
        with socket.create_connection(dns_addr, timeout=5.0) as conn:
            conn.sendall(frame_messages(wires))
        deadline = time.monotonic() + 20.0
        while engine.dns_records_seen < expected:
            assert time.monotonic() < deadline
            time.sleep(0.01)
        stoppers = [
            threading.Thread(target=engine.request_stop) for _ in range(4)
        ]
        for t in stoppers:
            t.start()
        for t in stoppers:
            t.join(timeout=10.0)
        engine.request_stop()  # and once more from this thread
        thread.join(timeout=20.0)
        assert not thread.is_alive(), "double stop hung the engine"
        assert "report" in result and result["report"].dns_records == expected

    def test_stop_during_drain_does_not_lose_or_double_count(self):
        """Extra stops racing the drain phase change nothing: every
        accepted datagram's flows are still correlated exactly once."""
        flows = _wire_flows(count=8, extra_unmatched=0)
        datagrams = list(FlowExporter(version=5, batch_size=4).export(flows))
        ingest = UdpFlowIngest()
        engine = AsyncEngine(FlowDNSConfig())
        thread, result = self._live_run_in_thread(engine, [], [ingest])
        flow_addr = ingest.wait_ready()
        for datagram in datagrams:
            send_datagrams([datagram], flow_addr)
            time.sleep(0.001)
        deadline = time.monotonic() + 20.0
        while engine.flows_seen < len(flows):
            assert time.monotonic() < deadline
            time.sleep(0.01)
        engine.request_stop()
        # Hammer the stop path while the drain runs to completion.
        while thread.is_alive():
            engine.request_stop()
            time.sleep(0.001)
        thread.join(timeout=20.0)
        report = result["report"]
        assert report.flow_records == len(flows)
        assert ingest.ingest_stats.accepted == len(datagrams)

    def test_stop_racing_loop_shutdown_is_dropped(self):
        """The narrow race: the loop closes between reading self._loop and
        the threadsafe call. call_soon_threadsafe raises RuntimeError on a
        closed loop; request_stop must swallow it (never propagate into a
        signal handler) and must NOT latch — a finished run needs no
        stopping, and a latched flag would auto-stop the engine's next
        run at startup."""
        import asyncio

        engine = AsyncEngine(FlowDNSConfig())
        closed = asyncio.new_event_loop()
        closed.close()
        engine._loop = closed
        engine._stop_event = asyncio.Event()
        engine.request_stop()  # must not raise
        assert engine._stop_pending is False

    def test_latched_stop_is_consumed_not_sticky(self):
        """A pre-start latch applies to exactly one run: the same engine
        can run again afterwards without stopping itself at startup."""
        ingest = TcpDnsIngest(clock=lambda: _CLOCK_TS)
        engine = AsyncEngine(FlowDNSConfig())
        engine.request_stop()
        thread, result = self._live_run_in_thread(engine, [ingest], [])
        thread.join(timeout=20.0)
        assert not thread.is_alive()
        assert engine._stop_pending is False
        # A later offline run on the same engine completes normally.
        flows = _flows(matched=10, unmatched=2)
        report = engine.run([[]], [flows], dns_first=True)
        assert report.flow_records == len(flows)

    def test_stop_after_run_completes_is_noop(self):
        """A post-completion stop is dropped, not latched: it must not
        poison a reused engine's next run into stopping at startup."""
        engine = AsyncEngine(FlowDNSConfig())
        report = engine.run([[]], [[]])
        engine.request_stop()
        engine.request_stop()
        assert report.flow_records == 0
        assert engine._stop_pending is False
        flows = _flows(matched=10, unmatched=2)
        second = engine.run([[]], [flows], dns_first=True)
        assert second.flow_records == len(flows)

    def test_stop_works_on_reused_engine_second_live_run(self):
        """The second run must not inherit the first run's (already-set)
        stop event: a request_stop during run 2 has to set run 2's own
        event, or the stop would be silently lost."""
        engine = AsyncEngine(FlowDNSConfig())
        engine.run([[]], [[]])  # run 1 completes
        ingest = TcpDnsIngest(clock=lambda: _CLOCK_TS)
        thread, result = self._live_run_in_thread(engine, [ingest], [])
        ingest.wait_ready()
        engine.request_stop()
        thread.join(timeout=20.0)
        assert not thread.is_alive(), "stop lost on reused engine"
        assert result["report"].dns_records == 0

    def test_reused_engine_reports_each_run_independently(self):
        """Each run on a reused engine gets fresh processors and storage:
        the second report carries only its own counts and does not
        correlate against the first run's stored records."""
        engine = AsyncEngine(FlowDNSConfig())
        dns = _dns_records()[:50]
        first = engine.run([list(dns)], [_flows(matched=30, unmatched=5)],
                           dns_first=True)
        assert first.dns_records == 50
        assert first.matched_flows > 0
        # Same flows, but NO dns this time: nothing may match, and the
        # first run's counts must not leak in.
        second = engine.run([[]], [_flows(matched=30, unmatched=5)],
                            dns_first=True)
        assert second.dns_records == 0
        assert second.matched_flows == 0
        assert second.flow_records == first.flow_records
        assert second.final_map_entries == 0


class TestBackpressure:
    def test_udp_overflow_drops_are_counted(self):
        """A full bounded ingest buffer drops whole batches and counts
        them — deterministic, no event loop involved."""
        ingest = UdpFlowIngest(capacity=2)
        buffer = AsyncBuffer(2, name="netflow[0]")
        ingest.connect_buffer(buffer)
        flows = _wire_flows(count=5, extra_unmatched=0)
        datagrams = list(FlowExporter(version=5, batch_size=4).export(flows))
        assert len(datagrams) >= 5
        for datagram in datagrams:
            ingest.on_datagram(datagram)
        stats = ingest.ingest_stats
        assert stats.received == len(datagrams)
        assert stats.accepted == 2
        assert stats.dropped == len(datagrams) - 2
        assert stats.loss_rate == pytest.approx(stats.dropped / stats.received)
        assert buffer.stats.dropped == stats.dropped

    def test_tcp_overflow_drops_are_counted(self):
        ingest = TcpDnsIngest(capacity=3, clock=lambda: 1.0)
        buffer = AsyncBuffer(3, name="dns[0]")
        ingest.connect_buffer(buffer)
        from repro.dns.tcp import TcpFrameDecoder

        decoder = TcpFrameDecoder()
        wires = _dns_wires(count=8)
        assert ingest.feed_chunk(decoder, frame_messages(wires))
        stats = ingest.ingest_stats
        assert stats.received == 8
        assert stats.accepted == 3
        assert stats.dropped == 5

    def test_tcp_corrupt_stream_detected(self):
        """An oversized frame claim (vs the configured cap) is the
        corruption path: connection dropped, counted, not raised."""
        ingest = TcpDnsIngest(capacity=8, max_message_size=64)
        ingest.connect_buffer(AsyncBuffer(8, name="dns[0]"))
        from repro.dns.tcp import TcpFrameDecoder

        decoder = TcpFrameDecoder(max_message_size=64)
        assert ingest.feed_chunk(decoder, b"\xff\xff garbage") is False
        assert ingest.ingest_stats.malformed == 1

    def test_ingest_stats_surfaced_by_threaded_and_sharded(self):
        """Any source exposing ingest_stats lands in EngineReport.ingest
        for the thread- and process-based engines too."""
        from repro.core.metrics import IngestStats
        from repro.core.sharded import ShardedEngine

        class StatsSource:
            def __init__(self, name, items):
                self.ingest_stats = IngestStats(name=name, received=len(items))
                self._items = items

            def __iter__(self):
                return iter(self._items)

        flows = [FlowRecord(ts=1.0, src_ip="10.0.0.1", dst_ip="100.64.0.1",
                            bytes_=10)]
        source = StatsSource("udp[test]", flows)
        threaded = ThreadedEngine(FlowDNSConfig())
        report = threaded.run([[]], [source])
        assert report.ingest["udp[test]"].received == 1

        source2 = StatsSource("udp[test2]", list(flows))
        sharded = ShardedEngine(FlowDNSConfig(), num_shards=1)
        report2 = sharded.run([[]], [source2], dns_first=True)
        assert report2.ingest["udp[test2]"].received == 1
