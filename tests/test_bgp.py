"""Tests for the BGP substrate: trie, RIB, AS registry, correlation."""

import pytest

from repro.bgp.asn import AsInfo, AsRegistry
from repro.bgp.correlate import ServiceAsSeries, correlate_with_bgp
from repro.bgp.prefix_trie import PrefixTrie
from repro.bgp.rib import Rib, Route
from repro.core.lookup import CorrelationResult
from repro.netflow.records import FlowRecord
from repro.util.errors import ConfigError


class TestPrefixTrie:
    def test_exact_match(self):
        trie = PrefixTrie()
        trie.insert("10.0.0.0/8", "ten")
        assert trie.lookup("10.1.2.3") == "ten"

    def test_longest_prefix_wins(self):
        trie = PrefixTrie()
        trie.insert("10.0.0.0/8", "short")
        trie.insert("10.1.0.0/16", "long")
        assert trie.lookup("10.1.2.3") == "long"
        assert trie.lookup("10.2.2.3") == "short"

    def test_no_match(self):
        trie = PrefixTrie()
        trie.insert("10.0.0.0/8", "x")
        assert trie.lookup("192.168.1.1") is None

    def test_default_route(self):
        trie = PrefixTrie()
        trie.insert("0.0.0.0/0", "default")
        trie.insert("10.0.0.0/8", "ten")
        assert trie.lookup("8.8.8.8") == "default"
        assert trie.lookup("10.0.0.1") == "ten"

    def test_ipv6(self):
        trie = PrefixTrie()
        trie.insert("2001:db8::/32", "doc")
        trie.insert("2001:db8:1::/48", "sub")
        assert trie.lookup("2001:db8:1::5") == "sub"
        assert trie.lookup("2001:db8:2::5") == "doc"

    def test_v4_v6_separate(self):
        trie = PrefixTrie()
        trie.insert("0.0.0.0/0", "v4")
        assert trie.lookup("::1") is None

    def test_lookup_with_prefix_length(self):
        trie = PrefixTrie()
        trie.insert("10.1.0.0/16", "x")
        assert trie.lookup_with_prefix("10.1.0.1") == (16, "x")

    def test_replace_value(self):
        trie = PrefixTrie()
        trie.insert("10.0.0.0/8", "a")
        trie.insert("10.0.0.0/8", "b")
        assert trie.lookup("10.0.0.1") == "b"
        assert len(trie) == 1

    def test_remove(self):
        trie = PrefixTrie()
        trie.insert("10.0.0.0/8", "a")
        assert trie.remove("10.0.0.0/8") is True
        assert trie.lookup("10.0.0.1") is None
        assert trie.remove("10.0.0.0/8") is False
        assert len(trie) == 0

    def test_host_routes(self):
        trie = PrefixTrie()
        trie.insert("192.0.2.7/32", "host")
        assert trie.lookup("192.0.2.7") == "host"
        assert trie.lookup("192.0.2.8") is None

    def test_items_round_trip(self):
        trie = PrefixTrie()
        prefixes = {"10.0.0.0/8": 1, "192.168.0.0/16": 2, "2001:db8::/32": 3}
        for prefix, value in prefixes.items():
            trie.insert(prefix, value)
        listed = dict(trie.items())
        assert listed == prefixes

    def test_lookup_many_matches_lookup(self):
        trie = PrefixTrie()
        trie.insert("10.0.0.0/8", "ten")
        trie.insert("10.1.0.0/16", "long")
        trie.insert("2001:db8::/32", "doc")
        addresses = ["10.1.2.3", "10.2.2.3", "8.8.8.8", "2001:db8::1",
                     "10.1.2.3", "8.8.8.8"]  # repeats exercise the memo
        assert trie.lookup_many(addresses) == [trie.lookup(a) for a in addresses]

    def test_lookup_many_memo_invalidated_by_mutation(self):
        trie = PrefixTrie()
        trie.insert("10.0.0.0/8", "ten")
        assert trie.lookup_many(["10.1.2.3"]) == ["ten"]
        trie.insert("10.1.0.0/16", "long")  # must not serve the stale memo
        assert trie.lookup_many(["10.1.2.3"]) == ["long"]
        trie.remove("10.1.0.0/16")
        assert trie.lookup_many(["10.1.2.3"]) == ["ten"]

    def test_lookup_many_memoises_misses(self):
        trie = PrefixTrie()
        trie.insert("10.0.0.0/8", "ten")
        assert trie.lookup_many(["192.0.2.1", "192.0.2.1"]) == [None, None]


class TestRib:
    def test_origin_lookup(self):
        rib = Rib([Route("198.51.100.0/24", 64501)])
        assert rib.origin_asn("198.51.100.10") == 64501
        assert rib.origin_asn("8.8.8.8") is None

    def test_as_path_must_end_at_origin(self):
        with pytest.raises(ConfigError):
            Route("10.0.0.0/8", 64501, as_path=(64700, 64999))

    def test_handover(self):
        route = Route("10.0.0.0/8", 64501, as_path=(64700, 64501))
        assert route.handover_asn == 64700

    def test_from_entries(self):
        rib = Rib.from_entries([("10.0.0.0/8", 64501), ("192.0.2.0/24", 64511)])
        assert len(rib) == 2
        assert rib.lookup("192.0.2.5").as_path[0] == 64700


class TestAsRegistry:
    def test_defaults_loaded(self):
        registry = AsRegistry()
        assert 64501 in registry
        assert "StreamCDN-One" == registry.get(64501).name

    def test_unknown_graceful(self):
        registry = AsRegistry()
        assert registry.name_of(65123) == "AS65123"

    def test_add(self):
        registry = AsRegistry()
        registry.add(AsInfo(65000, "TestNet", "cloud"))
        assert registry.get(65000).kind == "cloud"

    def test_invalid_asn(self):
        with pytest.raises(ValueError):
            AsInfo(0, "bad")


def _result(src_ip, service, ts=0.0, bytes_=100):
    flow = FlowRecord(ts=ts, src_ip=src_ip, dst_ip="100.64.0.1", bytes_=bytes_)
    chain = ("edge", service) if service else ()
    return CorrelationResult(flow=flow, chain=chain, ts=ts)


class TestCorrelateWithBgp:
    def _rib(self):
        return Rib([
            Route("198.51.100.0/24", 64501),
            Route("192.0.2.0/25", 64511),
            Route("192.0.2.128/25", 64512),
        ])

    def test_bytes_attributed_to_origin_as(self):
        results = [
            _result("198.51.100.1", "s1.tv", ts=100.0, bytes_=500),
            _result("198.51.100.2", "s1.tv", ts=200.0, bytes_=300),
        ]
        series = correlate_with_bgp(results, self._rib(), ["s1.tv"])
        assert series["s1.tv"].total_by_asn() == {64501: 800}

    def test_two_as_service(self):
        results = [
            _result("192.0.2.1", "s2.tv", bytes_=600),
            _result("192.0.2.200", "s2.tv", bytes_=400),
        ]
        series = correlate_with_bgp(results, self._rib(), ["s2.tv"])
        assert set(series["s2.tv"].total_by_asn()) == {64511, 64512}

    def test_unrouted_counted(self):
        results = [_result("203.0.113.99", "s1.tv", bytes_=50)]
        series = correlate_with_bgp(results, self._rib(), ["s1.tv"])
        assert series["s1.tv"].unrouted_bytes == 50

    def test_unmatched_flows_ignored(self):
        results = [_result("198.51.100.1", None)]
        series = correlate_with_bgp(results, self._rib(), ["s1.tv"])
        assert series["s1.tv"].total_by_asn() == {}

    def test_hour_buckets(self):
        results = [
            _result("198.51.100.1", "s1.tv", ts=100.0, bytes_=10),
            _result("198.51.100.1", "s1.tv", ts=3700.0, bytes_=20),
        ]
        series = correlate_with_bgp(results, self._rib(), ["s1.tv"], bucket_seconds=3600.0)
        assert series["s1.tv"].series_for(64501) == [(0, 10), (1, 20)]

    def test_dominant_asns(self):
        series = ServiceAsSeries(service="x", bucket_seconds=3600.0)
        series.add(1, 0, 960)
        series.add(2, 0, 30)
        series.add(3, 0, 10)
        assert series.dominant_asns(coverage=0.95) == [1]
        assert series.dominant_asns(coverage=0.99) == [1, 2]

    def test_custom_matcher(self):
        results = [_result("198.51.100.1", "api.s1.tv", bytes_=77)]
        series = correlate_with_bgp(
            results, self._rib(), ["s1.tv"],
            service_matcher=lambda resolved, target: resolved.endswith(target),
        )
        assert series["s1.tv"].total_by_asn() == {64501: 77}
