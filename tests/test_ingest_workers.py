"""Multi-process SO_REUSEPORT UDP ingest: parity, stats, and failure.

The contract under test:

* N reuseport workers and 1 worker produce *identical sorted output
  rows* for the same traffic (the kernel only changes which worker
  decodes a datagram, never what comes out);
* per-worker IngestStats merge into one truthful source-level view
  (received = datagrams sent, nothing dropped at rest);
* a worker dying mid-ingest surfaces as a ``report.warnings`` entry and
  the run *completes* — no hang waiting on a sentinel that will never
  arrive.

v5 datagrams are used throughout: v5 is stateless, so correctness is
independent of how the kernel's flow-hash spreads sender sockets across
workers (v9/IPFIX template state is per-worker-consistent because one
sender 4-tuple always lands on the same worker — but that is an
async-engine loopback-parity concern, already covered elsewhere).
"""

import io
import os
import signal
import socket
import threading
import time

import pytest

from repro.core.config import EngineConfig
from repro.core.engine import ThreadedEngine
from repro.core.ingest import ReuseportUdpIngest
from repro.core.metrics import IngestStats, merge_ingest_stats
from repro.core.sharded import ShardedEngine
from repro.dns.rr import RRType
from repro.dns.stream import DnsRecord
from repro.netflow.records import FlowRecord
from repro.netflow.v5 import encode_v5
from repro.util.errors import ConfigError

pytestmark = pytest.mark.skipif(
    not hasattr(socket, "SO_REUSEPORT"),
    reason="platform has no SO_REUSEPORT",
)


def _dns_records(count=60):
    return [
        DnsRecord(float(i % 40), f"svc{i % count}.example", RRType.A, 300,
                  f"10.0.{(i % count) // 30}.{(i % count) % 30 + 1}")
        for i in range(count)
    ]


def _datagrams(count=120, flows_per_datagram=10):
    out = []
    for b in range(count):
        flows = [
            FlowRecord(ts=float((b + i) % 40),
                       src_ip=f"10.0.{((b + i) % 60) // 30}.{((b + i) % 60) % 30 + 1}",
                       dst_ip="100.64.0.1", bytes_=100 + (b + i) % 13)
            for i in range(flows_per_datagram)
        ]
        out.append(encode_v5(flows, unix_secs=1000))
    return out


def _blast(datagrams, address, senders=8):
    """Send from several source sockets so the kernel's 4-tuple hash has
    material to spread datagrams across reuseport workers."""
    socks = [socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
             for _ in range(senders)]
    try:
        for i, datagram in enumerate(datagrams):
            socks[i % senders].sendto(datagram, address)
    finally:
        for sock in socks:
            sock.close()


def _run_threaded_live(workers, datagrams, settle=0.6):
    """One ThreadedEngine run fed by a live reuseport flow source."""
    source = ReuseportUdpIngest(workers=workers, batch_rows=64,
                                poll_interval=0.02)
    sink = io.StringIO()
    engine = ThreadedEngine(EngineConfig(), sink=sink)
    result = {}

    def run():
        result["report"] = engine.run([_dns_records()], [source])

    thread = threading.Thread(target=run)
    thread.start()
    try:
        address = source.wait_ready(10.0)
        deadline = time.monotonic() + 10.0
        while not engine.fillup_complete and time.monotonic() < deadline:
            time.sleep(0.01)
        _blast(datagrams, address)
        # Let the workers drain the kernel queue before asking them to
        # flush; loopback + a 4 MiB rcvbuf means nothing is lost, only
        # still in flight.
        deadline = time.monotonic() + 10.0
        while (source.ingest_stats.received < len(datagrams)
               and time.monotonic() < deadline):
            time.sleep(0.05)
        # Stats must be observable *while the run is live* — workers ship
        # final counters only on exit, so this exercises the parent-side
        # delivered-datagram lower bound.
        assert source.ingest_stats.received == len(datagrams)
        time.sleep(settle)
        source.request_stop()
        thread.join(30.0)
        assert not thread.is_alive(), "engine run hung after request_stop"
    finally:
        source.close()
    rows = sorted(line for line in sink.getvalue().splitlines()
                  if line and not line.startswith("#"))
    return rows, result["report"], source


class TestReuseportParity:
    def test_n_workers_match_single_worker(self):
        """Same traffic through 1 and 2 reuseport workers: identical
        sorted correlation rows and identical merged ingest totals."""
        datagrams = _datagrams()
        rows_one, report_one, source_one = _run_threaded_live(1, datagrams)
        rows_two, report_two, source_two = _run_threaded_live(2, datagrams)
        assert rows_one == rows_two
        assert len(rows_one) > 0
        for report, source in ((report_one, source_one),
                               (report_two, source_two)):
            stats = source.ingest_stats
            assert stats.received == len(datagrams)
            assert stats.accepted == len(datagrams)
            assert stats.dropped == 0
            assert stats.malformed == 0
            assert report.overall_loss_rate == 0.0
            # The merged view reaches the report keyed by source name.
            assert stats.name in report.ingest
        assert report_one.flow_records == report_two.flow_records

    def test_two_workers_really_share_the_port(self):
        """Both workers bind; the achieved SO_RCVBUF is surfaced."""
        datagrams = _datagrams(count=40)
        _rows, _report, source = _run_threaded_live(2, datagrams)
        assert len(source._stats_parts) == 2
        assert source.ingest_stats.recv_buffer_bytes > 0

    def test_sharded_engine_consumes_reuseport_source(self):
        """The reuseport source's FlowBatch items ride the sharded
        engine's flat-column IPC lane unchanged (smoke, 1 shard)."""
        datagrams = _datagrams(count=30)
        source = ReuseportUdpIngest(workers=1, batch_rows=32,
                                    poll_interval=0.02)
        sink = io.StringIO()
        engine = ShardedEngine(EngineConfig(shards=1), sink=sink)
        result = {}

        def run():
            result["report"] = engine.run(
                [_dns_records()], [source], dns_first=True
            )

        thread = threading.Thread(target=run)
        thread.start()
        try:
            address = source.wait_ready(10.0)
            _blast(datagrams, address, senders=2)
            deadline = time.monotonic() + 10.0
            while (source.ingest_stats.received < len(datagrams)
                   and time.monotonic() < deadline):
                time.sleep(0.05)
            time.sleep(0.3)
            source.request_stop()
            thread.join(30.0)
            assert not thread.is_alive()
        finally:
            source.close()
        report = result["report"]
        assert report.flow_records == len(datagrams) * 10
        assert source.ingest_stats.received == len(datagrams)


class TestWorkerDeath:
    def test_dead_worker_surfaces_warning_not_hang(self):
        """SIGKILL one of two workers mid-ingest: the run still
        terminates and the report carries a warning for the death."""
        datagrams = _datagrams(count=40)
        source = ReuseportUdpIngest(workers=2, batch_rows=32,
                                    poll_interval=0.02)
        sink = io.StringIO()
        engine = ThreadedEngine(EngineConfig(), sink=sink)
        result = {}

        def run():
            result["report"] = engine.run([_dns_records()], [source])

        thread = threading.Thread(target=run)
        thread.start()
        try:
            address = source.wait_ready(10.0)
            _blast(datagrams, address)
            time.sleep(0.3)
            os.kill(source.processes[0].pid, signal.SIGKILL)
            time.sleep(0.3)
            source.request_stop()
            thread.join(30.0)
            assert not thread.is_alive(), "run hung on a dead worker"
        finally:
            source.close()
        report = result["report"]
        assert any("died" in warning for warning in report.warnings), (
            report.warnings
        )

    def test_all_workers_dead_ends_iteration(self):
        """Unsupervised, even with every worker killed, iteration
        terminates (with supervision the workers would respawn)."""
        source = ReuseportUdpIngest(workers=2, poll_interval=0.02,
                                    supervise=False)
        got = []

        def run():
            got.extend(source)

        thread = threading.Thread(target=run)
        thread.start()
        try:
            source.wait_ready(10.0)
            for process in source.processes:
                os.kill(process.pid, signal.SIGKILL)
            thread.join(30.0)
            assert not thread.is_alive()
            assert len(source.ingest_errors) == 2
        finally:
            source.close()


class TestSupervision:
    """The supervised lifecycle: dead workers respawn, counters survive.

    These gate the service-hardening contract — a SIGKILL'd worker comes
    back on the same port, the merged IngestStats keep counting across
    the generation boundary (never reset), and a slot that keeps dying
    is abandoned once the restart budget is spent, degrading the source
    to its surviving workers instead of burning CPU on respawn loops.
    """

    def _iterate_in_thread(self, source):
        got = []
        thread = threading.Thread(target=lambda: got.extend(source))
        thread.start()
        return got, thread

    def test_sigkilled_worker_respawns_with_counter_continuity(self):
        first = _datagrams(count=30)
        second = _datagrams(count=30)
        source = ReuseportUdpIngest(workers=2, batch_rows=32,
                                    poll_interval=0.02,
                                    restart_backoff=0.05)
        got, thread = self._iterate_in_thread(source)
        try:
            address = source.wait_ready(10.0)
            _blast(first, address)
            deadline = time.monotonic() + 10.0
            while (source.ingest_stats.received < len(first)
                   and time.monotonic() < deadline):
                time.sleep(0.02)
            assert source.ingest_stats.received == len(first)

            victim_pid = source.processes[0].pid
            os.kill(victim_pid, signal.SIGKILL)
            deadline = time.monotonic() + 10.0
            while source.restarts < 1 and time.monotonic() < deadline:
                time.sleep(0.02)
            assert source.restarts >= 1, source.ingest_errors
            # The slot was refilled by a *new* process, not abandoned.
            deadline = time.monotonic() + 10.0
            while (not source.processes[0].is_alive()
                   and time.monotonic() < deadline):
                time.sleep(0.02)
            assert source.processes[0].is_alive()
            assert source.processes[0].pid != victim_pid

            _blast(second, address)
            expected = len(first) + len(second)
            deadline = time.monotonic() + 10.0
            while (source.ingest_stats.received < expected
                   and time.monotonic() < deadline):
                time.sleep(0.02)
            # Counter continuity: the merged view kept summing across the
            # generation boundary instead of resetting at the respawn.
            assert source.ingest_stats.received == expected
            source.request_stop()
            thread.join(30.0)
            assert not thread.is_alive()
        finally:
            source.close()
        assert sum(len(batch) for batch in got) == (
            (len(first) + len(second)) * 10
        )
        assert any("respawning" in e for e in source.ingest_errors), (
            source.ingest_errors
        )

    def test_restart_budget_exhaustion_degrades_to_survivors(self):
        source = ReuseportUdpIngest(workers=2, poll_interval=0.02,
                                    max_restarts=1, restart_window=60.0,
                                    restart_backoff=0.05)
        got, thread = self._iterate_in_thread(source)
        try:
            source.wait_ready(10.0)
            for _round in range(2):  # budget is 1: second death abandons
                victim = source.processes[0]
                victim_pid = victim.pid
                os.kill(victim_pid, signal.SIGKILL)
                deadline = time.monotonic() + 10.0
                while time.monotonic() < deadline:
                    if 0 in source._abandoned:
                        break
                    if (source.processes[0].pid != victim_pid
                            and source.processes[0].is_alive()):
                        break
                    time.sleep(0.02)
            deadline = time.monotonic() + 10.0
            while 0 not in source._abandoned and time.monotonic() < deadline:
                time.sleep(0.02)
            assert 0 in source._abandoned, source.ingest_errors
            assert source.restarts == 1
            assert any("abandoned" in e and "surviving" in e
                       for e in source.ingest_errors), source.ingest_errors
            # The surviving worker still drains and stops cleanly.
            source.request_stop()
            thread.join(30.0)
            assert not thread.is_alive()
        finally:
            source.close()


class TestConstructionAndStats:
    def test_capture_tee_rejected(self):
        with pytest.raises(ConfigError, match="capture"):
            ReuseportUdpIngest(workers=2, capture=object())

    def test_worker_count_lower_bound(self):
        with pytest.raises(ConfigError, match="at least 1"):
            ReuseportUdpIngest(workers=0)

    def test_merge_ingest_stats_sums_and_takes_min_rcvbuf(self):
        parts = [
            IngestStats(name="a", received=3, accepted=2, dropped=1,
                        malformed=0, bytes_in=100, recv_buffer_bytes=4096),
            IngestStats(name="b", received=5, accepted=5, dropped=0,
                        malformed=1, bytes_in=200, recv_buffer_bytes=2048),
            # A part that never bound reports 0 and must not drag the
            # min below the real sockets' floor.
            IngestStats(name="c", recv_buffer_bytes=0),
        ]
        merged = merge_ingest_stats("merged", parts)
        assert merged.name == "merged"
        assert merged.received == 8
        assert merged.accepted == 7
        assert merged.dropped == 1
        assert merged.malformed == 1
        assert merged.bytes_in == 300
        assert merged.recv_buffer_bytes == 2048

    def test_single_worker_runs_without_reuseport(self):
        """workers=1 must work even where SO_REUSEPORT is missing — it
        binds a plain socket (portability baseline)."""
        source = ReuseportUdpIngest(workers=1, poll_interval=0.02)
        got = []
        thread = threading.Thread(target=lambda: got.extend(source))
        thread.start()
        try:
            address = source.wait_ready(10.0)
            _blast(_datagrams(count=5), address, senders=1)
            deadline = time.monotonic() + 10.0
            while (source.ingest_stats.received < 5
                   and time.monotonic() < deadline):
                time.sleep(0.05)
            source.request_stop()
            thread.join(15.0)
            assert not thread.is_alive()
        finally:
            source.close()
        assert sum(len(batch) for batch in got) == 50
