"""Differential tests: the columnar DNS fill path vs the object reference.

PR 9's parity contract: for any payload sequence,
:func:`repro.dns.columnar.decode_fill_columns` →
``FillUpProcessor.process_columns`` must produce the same stored
records, the same :class:`FillUpStats` (including ``invalid`` and the
unknown-RR tolerance counter), and the same storage state as running
each payload through ``filter_message`` → ``process_batch``.
Randomization (hypothesis) covers compression pointers (a small label
pool makes the encoder emit them constantly), CNAME chains, unknown RR
types and classes (including EDNS OPT, whose class field is a UDP
size), populated authority/additional sections, error rcodes, query
messages, truncation slices and single-byte corruption.

Storage snapshots are compared minus ``saved_at`` — the only field of a
dump that is wall-clock, not state. Engine-level legs pin every engine
(threaded, sharded with its flat-column DNS IPC, async) to identical
output rows and reports with ``dns_fill_columnar`` on vs off.
"""

import io
import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import FlowDNSConfig
from repro.core.engine import ThreadedEngine, gated_flow_source
from repro.core.fillup import FillUpProcessor
from repro.core.pipeline import FillLane
from repro.core.sharded import ShardedEngine
from repro.core.async_engine import AsyncEngine
from repro.core.storage_adapter import DnsStorage
from repro.dns.columnar import DnsBatch, decode_fill_columns
from repro.dns.rr import RClass, RRType, ResourceRecord
from repro.dns.stream import DnsRecord
from repro.dns.wire import (
    DnsMessage,
    Header,
    Opcode,
    Question,
    Rcode,
    encode_message,
)
from repro.netflow.records import FlowRecord
from repro.storage.snapshot import dump_storage

# A deliberately tiny label pool: almost every generated name shares a
# suffix with an earlier one, so NameCompressor emits compression
# pointers in nearly every message — the decoder feature most likely to
# diverge between the two paths.
_LABELS = ["cdn", "edge", "www", "img", "api", "svc", "origin"]
_TLDS = ["com", "net", "example"]


@st.composite
def _names(draw):
    labels = draw(st.lists(st.sampled_from(_LABELS), min_size=1, max_size=3))
    return ".".join(labels) + "." + draw(st.sampled_from(_TLDS))


@st.composite
def _answer_rr(draw, owner):
    kind = draw(
        st.sampled_from(
            ["a", "a", "a", "aaaa", "cname", "cname", "ns", "mx", "txt",
             "unknown_type", "unknown_class"]
        )
    )
    ttl = draw(st.integers(min_value=0, max_value=86400))
    if kind == "a":
        return ResourceRecord(owner, RRType.A, RClass.IN, ttl,
                              draw(st.binary(min_size=4, max_size=4)))
    if kind == "aaaa":
        return ResourceRecord(owner, RRType.AAAA, RClass.IN, ttl,
                              draw(st.binary(min_size=16, max_size=16)))
    if kind == "cname":
        return ResourceRecord(owner, RRType.CNAME, RClass.IN, ttl, draw(_names()))
    if kind == "ns":
        return ResourceRecord(owner, RRType.NS, RClass.IN, ttl, draw(_names()))
    if kind == "mx":
        return ResourceRecord(owner, RRType.MX, RClass.IN, ttl,
                              (draw(st.integers(0, 100)), draw(_names())))
    if kind == "txt":
        return ResourceRecord(owner, RRType.TXT, RClass.IN, ttl,
                              draw(st.binary(max_size=12)))
    if kind == "unknown_type":
        # SVCB/HTTPS-style: an rtype outside the enums, opaque rdata.
        return ResourceRecord(owner, draw(st.sampled_from([64, 65, 257])),
                              RClass.IN, ttl, draw(st.binary(max_size=8)))
    # Known type, class outside the enums (the EDNS trick of stuffing a
    # UDP size into the class field, generalised).
    return ResourceRecord(owner, RRType.A, draw(st.sampled_from([9, 4096])),
                          ttl, draw(st.binary(min_size=4, max_size=4)))


@st.composite
def _messages(draw):
    qname = draw(_names())
    header = Header(
        msg_id=draw(st.integers(0, 0xFFFF)),
        qr=draw(st.sampled_from([True, True, True, False])),
        opcode=Opcode.QUERY,
        rcode=draw(st.sampled_from([Rcode.NOERROR] * 3 + [Rcode.NXDOMAIN])),
    )
    owners = [qname] + draw(st.lists(_names(), max_size=2))
    answers = draw(
        st.lists(
            st.sampled_from(owners).flatmap(lambda o: _answer_rr(o)),
            max_size=6,
        )
    )
    authorities = draw(
        st.lists(
            _names().flatmap(
                lambda n: _names().map(
                    lambda t: ResourceRecord(n, RRType.NS, RClass.IN, 300, t)
                )
            ),
            max_size=2,
        )
    )
    additionals = []
    if draw(st.booleans()):
        # EDNS OPT: root owner, class carries the UDP payload size —
        # an unknown rclass both paths must skip-and-count.
        additionals.append(ResourceRecord(".", RRType.OPT, 4096, 0, b""))
    return DnsMessage(
        header=header,
        questions=[Question(qname, RRType.A, RClass.IN)],
        answers=answers,
        authorities=authorities,
        additionals=additionals,
    )


@st.composite
def _payloads(draw):
    """An encoded message, sometimes truncated or single-byte-corrupted."""
    wire = encode_message(draw(_messages()))
    mode = draw(st.sampled_from(["ok", "ok", "ok", "truncate", "flip"]))
    if mode == "truncate":
        return wire[: draw(st.integers(0, max(0, len(wire) - 1)))]
    if mode == "flip" and wire:
        i = draw(st.integers(0, len(wire) - 1))
        return wire[:i] + bytes([draw(st.integers(0, 255))]) + wire[i + 1 :]
    return wire


def _dump_without_clock(storage: DnsStorage) -> dict:
    sink = io.StringIO()
    dump_storage(storage, sink)
    state = json.loads(sink.getvalue())
    state.pop("saved_at", None)
    return state


@given(payloads=st.lists(_payloads(), max_size=12))
@settings(max_examples=150, deadline=None)
def test_decode_fill_columns_matches_reference_filter(payloads):
    """Row-for-row and counter-for-counter parity at the decode layer."""
    stamps = [1000.0 + i for i in range(len(payloads))]
    reference = FillUpProcessor(DnsStorage(FlowDNSConfig()))
    ref_rows = []
    for t, payload in zip(stamps, payloads):
        ref_rows.extend(reference.filter_message(t, payload))

    batch = decode_fill_columns(payloads, stamps)
    assert batch.messages == len(payloads) == reference.stats.raw_messages
    assert batch.invalid == reference.stats.invalid
    assert batch.unknown_records == reference.stats.records_unknown_type
    ours = batch.to_records()
    assert ours == ref_rows
    # Not just equal — the *same interned objects*, so downstream map
    # keys hash-share across the two paths.
    for mine, theirs in zip(ours, ref_rows):
        assert mine.query is theirs.query
        assert mine.answer is theirs.answer


@given(payloads=st.lists(_payloads(), max_size=10), scalar_ts=st.booleans())
@settings(max_examples=60, deadline=None)
def test_fill_lane_differential(payloads, scalar_ts):
    """End-to-end lane parity: stats and stored state, mixed item kinds."""
    if scalar_ts:
        batch = decode_fill_columns(payloads, 1000.0)
        assert batch.ts == [1000.0] * len(batch)
    stamps = [1000.0 + i for i in range(len(payloads))]
    # Interleave object records so the columnar lane's run-splitting
    # (wire runs vs record runs, order preserved) is exercised too.
    extra = [
        DnsRecord(2000.0 + i, f"obj{i}.example", RRType.A, 60, f"192.0.2.{i + 1}")
        for i in range(3)
    ]
    items = [(t, p) for t, p in zip(stamps, payloads)]
    items = items[: len(items) // 2] + extra + items[len(items) // 2 :]

    results = {}
    for columnar in (False, True):
        storage = DnsStorage(FlowDNSConfig())
        processor = FillUpProcessor(storage)
        lane = FillLane(processor, storage, exact_ttl=False, columnar=columnar)
        lane.process_items(list(items))
        results[columnar] = (processor.stats, _dump_without_clock(storage))

    assert results[True][0] == results[False][0]
    assert results[True][1] == results[False][1]


def _exact_ttl_corpus():
    wires = []
    for i in range(30):
        name = f"svc{i % 7}.exact.example"
        msg = DnsMessage(
            questions=[Question(name, RRType.A, RClass.IN)],
            answers=[ResourceRecord(name, RRType.A, RClass.IN, 5 + i,
                                    bytes([10, 0, 0, i + 1]))],
        )
        wires.append((float(i), encode_message(msg)))
    return wires


def test_exact_ttl_forces_reference_path():
    """A.8 exact-TTL semantics must not be amortised: the lane disables
    columnar batching and per-record store+tick cadence is preserved."""
    corpus = _exact_ttl_corpus()
    results = {}
    for columnar in (False, True):
        config = FlowDNSConfig(exact_ttl=True)
        storage = DnsStorage(config)
        processor = FillUpProcessor(storage)
        lane = FillLane(processor, storage, exact_ttl=True, columnar=columnar)
        assert lane.columnar is False  # exact_ttl always wins
        lane.process_items(list(corpus))
        # Exact-TTL storages are not snapshot-able (entries expire by
        # wall time), so parity is probed through lookups at several
        # clock positions around the TTL edges instead of via dumps.
        probes = tuple(
            storage.lookup_ip(f"10.0.0.{i + 1}", now)
            for i in range(30)
            for now in (float(i), float(i) + 4.5, float(i) + 400.0)
        )
        results[columnar] = (processor.stats, probes)
    assert results[True] == results[False]


# ---------------------------------------------------------------------------
# Engine-level differential: every engine, columnar fill lane on vs off,
# identical correlation rows and report counters.
# ---------------------------------------------------------------------------

def _golden_dns_wires():
    wires = []
    for i in range(90):
        name = f"svc{i % 30}.gold.example"
        answers = [
            ResourceRecord(name, RRType.A, RClass.IN, 600,
                           bytes([10, 9, i % 30, 5]))
        ]
        if i % 3 == 0:
            answers.insert(
                0,
                ResourceRecord(f"www{i % 30}.gold.example", RRType.CNAME,
                               RClass.IN, 600, name),
            )
        if i % 5 == 0:
            # An unknown-type RR riding along must not cost the answers.
            answers.append(
                ResourceRecord(name, 65, RClass.IN, 600, b"\x00\x01")
            )
        msg = DnsMessage(
            questions=[Question(name, RRType.A, RClass.IN)],
            answers=answers,
            additionals=[ResourceRecord(".", RRType.OPT, 4096, 0, b"")]
            if i % 4 == 0
            else [],
        )
        wires.append((float(i), encode_message(msg)))
    # A few invalids the reports must agree on: truncated, query, garbage.
    wires.append((95.0, wires[0][1][:7]))
    query = DnsMessage(header=Header(qr=False),
                       questions=[Question("q.gold.example", RRType.A)])
    wires.append((96.0, encode_message(query)))
    wires.append((97.0, b"\x00" * 3))
    return wires


def _golden_flows():
    return [
        FlowRecord(ts=200.0 + i, src_ip=f"10.9.{i % 30}.5", dst_ip="100.64.0.1",
                   src_port=443, dst_port=40000 + i, protocol=6, packets=2,
                   bytes_=900 + i)
        for i in range(200)
    ]


def _rows(sink: io.StringIO):
    return sorted(
        line for line in sink.getvalue().splitlines()
        if line and not line.startswith("#")
    )


def _run_one(engine_name: str, columnar: bool):
    config = FlowDNSConfig(dns_fill_columnar=columnar)
    dns = _golden_dns_wires()
    flows = _golden_flows()
    sink = io.StringIO()
    if engine_name == "threaded":
        engine = ThreadedEngine(config, sink=sink)
        report = engine.run([dns], [gated_flow_source(engine, flows)])
    elif engine_name == "sharded":
        engine = ShardedEngine(config, sink=sink, num_shards=2)
        report = engine.run([dns], [flows], dns_first=True)
    else:
        report = AsyncEngine(config, sink=sink).run([dns], [flows],
                                                    dns_first=True)
    return report, _rows(sink)


COMPARABLE_FIELDS = (
    "dns_records",
    "dns_invalid",
    "flow_records",
    "matched_flows",
    "total_bytes",
    "correlated_bytes",
    "chain_lengths",
)


def test_engines_agree_columnar_vs_reference():
    for engine_name in ("threaded", "sharded", "async"):
        ref_report, ref_rows = _run_one(engine_name, columnar=False)
        col_report, col_rows = _run_one(engine_name, columnar=True)
        assert ref_rows, f"{engine_name}: golden corpus produced no rows"
        assert col_rows == ref_rows, (
            f"{engine_name}: columnar fill lane changed the output rows"
        )
        for fieldname in COMPARABLE_FIELDS:
            assert getattr(col_report, fieldname) == getattr(
                ref_report, fieldname
            ), f"{engine_name}: {fieldname} diverged with columnar fill"


def test_batch_ipc_round_trip_preserves_rows_and_counters():
    """The sharded engine's flat-column DNS IPC: columns() → from_columns()
    is loss-free for rows and per-message accounting alike."""
    payloads = [wire for _, wire in _golden_dns_wires()]
    batch = decode_fill_columns(payloads, 42.0)
    clone = DnsBatch.from_columns(batch.columns())
    assert clone.to_records() == batch.to_records()
    assert (clone.messages, clone.invalid, clone.unknown_records) == (
        batch.messages, batch.invalid, batch.unknown_records
    )
