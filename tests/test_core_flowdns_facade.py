"""Tests for the FlowDNS facade (the embeddable correlator object)."""

import io

import pytest

from repro import FlowDNS, FlowDNSConfig
from repro.dns.rr import RRType, a_record, cname_record
from repro.dns.stream import DnsRecord
from repro.dns.wire import DnsMessage, Question, encode_message
from repro.netflow.records import FlowRecord


@pytest.fixture()
def fd():
    return FlowDNS()


def _chain(fd, ts=0.0):
    fd.add_dns(DnsRecord(ts, "www.svc.com", RRType.CNAME, 600, "edge.cdn.net"))
    fd.add_dns(DnsRecord(ts, "edge.cdn.net", RRType.A, 60, "10.5.5.5"))


class TestFacadeBasics:
    def test_add_and_correlate(self, fd):
        _chain(fd)
        result = fd.correlate(
            FlowRecord(ts=1.0, src_ip="10.5.5.5", dst_ip="100.64.0.1", bytes_=100)
        )
        assert result.service == "www.svc.com"

    def test_service_of(self, fd):
        _chain(fd)
        assert fd.service_of("10.5.5.5", now=1.0) == "www.svc.com"
        assert fd.service_of("9.9.9.9", now=1.0) is None

    def test_service_of_does_not_touch_stats(self, fd):
        _chain(fd)
        fd.service_of("10.5.5.5", now=1.0)
        assert fd.lookup_stats.flows_in == 0

    def test_wire_message_ingest(self, fd):
        msg = DnsMessage()
        msg.questions.append(Question("a.example", RRType.A))
        msg.answers.append(cname_record("a.example", "b.cdn.net", 300))
        msg.answers.append(a_record("b.cdn.net", "10.7.7.7", 60))
        stored = fd.add_dns_message(5.0, encode_message(msg))
        assert stored == 2
        assert fd.service_of("10.7.7.7", now=5.0) == "a.example"

    def test_correlate_many_and_rate(self, fd):
        _chain(fd)
        results = fd.correlate_many([
            FlowRecord(ts=1.0, src_ip="10.5.5.5", dst_ip="100.64.0.1", bytes_=800),
            FlowRecord(ts=1.0, src_ip="172.16.0.1", dst_ip="100.64.0.1", bytes_=200),
        ])
        assert [r.matched for r in results] == [True, False]
        assert fd.correlation_rate == 0.8

    def test_entry_counts(self, fd):
        _chain(fd)
        counts = fd.entry_counts()
        assert counts["ip_name"]["active"] == 1
        assert counts["name_cname"]["active"] == 1


class TestFacadeTick:
    def test_tick_drives_rotation_without_dns_traffic(self, fd):
        _chain(fd, ts=0.0)
        fd.tick(10.0)  # arms the clear-up clock
        assert fd.service_of("10.5.5.5", now=10.0) == "www.svc.com"
        fd.tick(4000.0)  # one A-interval later: rotate (record → inactive)
        assert fd.service_of("10.5.5.5", now=4000.0) == "www.svc.com"
        fd.tick(8000.0)  # second rotation: gone
        assert fd.service_of("10.5.5.5", now=8000.0) is None

    def test_exact_ttl_facade(self):
        fd = FlowDNS(FlowDNSConfig(exact_ttl=True))
        fd.add_dns(DnsRecord(0.0, "x.example", RRType.A, 60, "10.1.1.1"))
        assert fd.service_of("10.1.1.1", now=30.0) == "x.example"
        assert fd.service_of("10.1.1.1", now=120.0) is None


class TestFacadeState:
    def test_save_and_load_state(self, fd):
        _chain(fd)
        buffer = io.StringIO()
        saved = fd.save_state(buffer)
        assert saved == 2

        fresh = FlowDNS()
        buffer.seek(0)
        assert fresh.load_state(buffer) == 2
        assert fresh.service_of("10.5.5.5", now=1.0) == "www.svc.com"
