"""Tests for metrics exposition and figure-data export."""

import io

from engine_gates import gated_flows

from repro.analysis.figures import (
    ecdf_rows,
    figure2_rows,
    figure3_rows,
    figure7_rows,
    render_report_summary,
    sparkline,
    write_tsv,
)
from repro.core.config import FlowDNSConfig
from repro.core.engine import ThreadedEngine
from repro.core.metrics import EngineReport, IntervalSample
from repro.core.monitor import parse_exposition, render_engine, render_report
from repro.dns.rr import RRType
from repro.dns.stream import DnsRecord
from repro.netflow.records import FlowRecord


def _report():
    samples = [
        IntervalSample(t_start=h * 3600.0, t_end=(h + 1) * 3600.0,
                       cpu_percent=2400 + 50 * h, memory_bytes=(16 + h) * 2**30,
                       traffic_bytes=10**9 * (h + 1), correlated_bytes=int(0.8 * 10**9 * (h + 1)),
                       dns_records=100, flow_records=500, loss_rate=0.0,
                       map_entries=5000 + h)
        for h in range(4)
    ]
    return EngineReport(
        samples=samples, total_bytes=10**10, correlated_bytes=8 * 10**9,
        dns_records=400, flow_records=2000, matched_flows=1600,
        chain_lengths={1: 700, 2: 800, 3: 100},
    )


class TestRenderReport:
    def test_exposition_contains_core_metrics(self):
        text = render_report(_report())
        metrics = parse_exposition(text)
        assert metrics["flowdns_correlation_rate"] == 0.8
        assert metrics["flowdns_flow_records_total"] == 2000
        assert metrics['flowdns_chains_total{length="2"}'] == 800

    def test_headers_emitted_once(self):
        text = render_report(_report())
        assert text.count("# TYPE flowdns_chains_total counter") == 1

    def test_parse_skips_comments(self):
        metrics = parse_exposition("# HELP x y\n# TYPE x gauge\nx 1.5\n")
        assert metrics == {"x": 1.5}


class TestRenderEngine:
    def test_live_engine_metrics(self):
        dns = [DnsRecord(1.0, "a.example", RRType.A, 60, "10.1.1.1")]

        engine = ThreadedEngine(FlowDNSConfig())
        flows = [FlowRecord(ts=2.0, src_ip="10.1.1.1", dst_ip="100.64.0.1", bytes_=10)]
        engine.run([dns], [gated_flows(engine, flows)])
        metrics = parse_exposition(render_engine(engine))
        assert metrics['flowdns_stream_offered_total{stream="dns[0]"}'] == 1.0
        assert metrics["flowdns_write_rows"] == 1.0
        active_key = 'flowdns_storage_entries{bank="ip_name",tier="active"}'
        assert metrics[active_key] == 1.0


class TestSparkline:
    def test_empty(self):
        assert sparkline([]) == ""

    def test_constant_series(self):
        assert sparkline([5, 5, 5]) == "▄▄▄"

    def test_monotone_series_rises(self):
        line = sparkline([0, 1, 2, 3, 4, 5, 6, 7])
        assert line[0] == "▁" and line[-1] == "█"

    def test_downsampling(self):
        line = sparkline(list(range(100)), width=10)
        assert len(line) == 10


class TestFigureRows:
    def test_figure2_rows(self):
        rows = figure2_rows(_report())
        assert len(rows) == 4
        t, cpu, mem, traffic = rows[0]
        assert t == 0.0 and cpu == 2400 and mem == 16.0 and traffic == 10**9

    def test_figure3_rows_long_format(self):
        rows = figure3_rows({"main": _report(), "no-split": _report()})
        assert len(rows) == 8
        assert {r[0] for r in rows} == {"main", "no-split"}

    def test_figure7_rows_skip_empty_intervals(self):
        report = _report()
        report.samples.append(
            IntervalSample(t_start=4 * 3600.0, t_end=5 * 3600.0, cpu_percent=0,
                           memory_bytes=0, traffic_bytes=0, correlated_bytes=0,
                           dns_records=0, flow_records=0, loss_rate=0, map_entries=0)
        )
        rows = figure7_rows({"main": report})
        assert len(rows) == 4  # the empty interval is excluded

    def test_write_tsv(self):
        sink = io.StringIO()
        count = write_tsv(sink, ("a", "b"), [(1, 2), (3, 4)])
        assert count == 2
        lines = sink.getvalue().splitlines()
        assert lines[0] == "# a\tb"
        assert lines[1] == "1\t2"

    def test_ecdf_rows(self):
        assert ecdf_rows([(1, 0.5), (2, 1.0)]) == [(1.0, 0.5), (2.0, 1.0)]

    def test_render_summary_mentions_key_numbers(self):
        text = render_report_summary(_report(), title="test run")
        assert "80.0%" in text
        assert "CPU" in text and "mem" in text
