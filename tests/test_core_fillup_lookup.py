"""Tests for FillUpProcessor and LookUpProcessor (Algorithms 1 and 2)."""

import pytest

from repro.core.config import FlowDNSConfig
from repro.core.fillup import FillUpProcessor
from repro.core.lookup import LookUpProcessor
from repro.core.storage_adapter import DnsStorage
from repro.dns.rr import RRType, a_record, cname_record
from repro.dns.stream import DnsRecord
from repro.dns.wire import DnsMessage, Header, Question, encode_message
from repro.netflow.records import FlowDirection, FlowRecord


@pytest.fixture()
def storage():
    return DnsStorage(FlowDNSConfig())


@pytest.fixture()
def fillup(storage):
    return FillUpProcessor(storage)


@pytest.fixture()
def lookup(storage):
    return LookUpProcessor(storage, FlowDNSConfig())


def _fill_chain(fillup, ts=0.0):
    """service.com -> r0 -> edge, edge A 10.5.5.5"""
    records = [
        DnsRecord(ts, "service.com", RRType.CNAME, 600, "r0.cdn.net"),
        DnsRecord(ts, "r0.cdn.net", RRType.CNAME, 600, "edge.cdn.net"),
        DnsRecord(ts, "edge.cdn.net", RRType.A, 60, "10.5.5.5"),
    ]
    for rec in records:
        fillup.process(rec)


class TestFillUpFilter:
    def test_valid_response_bytes_accepted(self, fillup):
        msg = DnsMessage()
        msg.questions.append(Question("a.example", RRType.A))
        msg.answers.append(a_record("a.example", "10.1.1.1", 60))
        records = fillup.filter_message(5.0, encode_message(msg))
        assert len(records) == 1
        assert records[0].answer == "10.1.1.1"

    def test_garbage_bytes_counted_invalid(self, fillup):
        assert fillup.filter_message(0.0, b"\xff" * 30) == []
        assert fillup.stats.invalid == 1

    def test_query_message_filtered(self, fillup):
        msg = DnsMessage(header=Header(qr=False))
        msg.questions.append(Question("a.example", RRType.A))
        assert fillup.filter_message(0.0, msg) == []

    def test_message_object_accepted(self, fillup):
        msg = DnsMessage()
        msg.answers.append(cname_record("a.example", "b.example", 60))
        records = fillup.filter_message(1.0, msg)
        assert records[0].is_cname


class TestFillUpProcess:
    def test_address_record_stored(self, fillup, storage):
        fillup.process(DnsRecord(0.0, "a.example", RRType.A, 60, "10.1.1.1"))
        assert storage.lookup_ip("10.1.1.1", now=0.0) == "a.example"
        assert fillup.stats.records_stored == 1

    def test_cname_record_stored(self, fillup, storage):
        fillup.process(DnsRecord(0.0, "a.example", RRType.CNAME, 600, "edge.cdn.net"))
        assert storage.lookup_cname("edge.cdn.net", now=0.0) == "a.example"

    def test_other_types_skipped(self, fillup):
        stored = fillup.process(DnsRecord(0.0, "a.example", RRType.NS, 600, "ns.example"))
        assert stored is False
        assert fillup.stats.records_skipped == 1

    def test_process_many(self, fillup):
        records = [
            DnsRecord(0.0, f"a{i}.example", RRType.A, 60, f"10.0.0.{i + 1}")
            for i in range(5)
        ]
        assert fillup.process_many(records) == 5


class TestLookUp:
    def test_unmatched_ip_gives_null_result(self, lookup):
        flow = FlowRecord(ts=0.0, src_ip="9.9.9.9", dst_ip="100.64.0.1", bytes_=100)
        result = lookup.process(flow)
        assert not result.matched
        assert result.service is None
        assert lookup.stats.unmatched == 1

    def test_direct_a_record_match(self, fillup, lookup):
        fillup.process(DnsRecord(0.0, "site.example", RRType.A, 60, "10.1.1.1"))
        flow = FlowRecord(ts=1.0, src_ip="10.1.1.1", dst_ip="100.64.0.1", bytes_=500)
        result = lookup.process(flow)
        assert result.matched
        assert result.chain == ("site.example",)
        assert result.service == "site.example"

    def test_cname_chain_unrolled_to_service(self, fillup, lookup):
        _fill_chain(fillup)
        flow = FlowRecord(ts=1.0, src_ip="10.5.5.5", dst_ip="100.64.0.1", bytes_=900)
        result = lookup.process(flow)
        assert result.matched
        assert result.chain == ("edge.cdn.net", "r0.cdn.net", "service.com")
        assert result.service == "service.com"
        assert result.dns_name == "edge.cdn.net"

    def test_bytes_accounting(self, fillup, lookup):
        _fill_chain(fillup)
        lookup.process(FlowRecord(ts=1.0, src_ip="10.5.5.5", dst_ip="100.64.0.1", bytes_=700))
        lookup.process(FlowRecord(ts=1.0, src_ip="8.8.8.8", dst_ip="100.64.0.1", bytes_=300))
        assert lookup.stats.bytes_in == 1000
        assert lookup.stats.bytes_matched == 700
        assert abs(lookup.stats.correlation_rate - 0.7) < 1e-9

    def test_loop_limit_respected(self, storage, fillup):
        # A CNAME chain longer than the limit.
        config = FlowDNSConfig(cname_loop_limit=3)
        lookup = LookUpProcessor(storage, config)
        names = [f"n{i}.example" for i in range(10)]
        fillup.process(DnsRecord(0.0, names[0], RRType.A, 60, "10.2.2.2"))
        for i in range(len(names) - 1):
            fillup.process(DnsRecord(0.0, names[i + 1], RRType.CNAME, 600, names[i]))
        result = lookup.process(
            FlowRecord(ts=1.0, src_ip="10.2.2.2", dst_ip="100.64.0.1", bytes_=1)
        )
        # chain = A owner + at most 3 CNAME steps
        assert len(result.chain) == 4
        assert lookup.stats.loop_limit_hits == 1

    def test_cname_cycle_defused(self, storage, fillup, lookup):
        fillup.process(DnsRecord(0.0, "x.example", RRType.A, 60, "10.3.3.3"))
        fillup.process(DnsRecord(0.0, "y.example", RRType.CNAME, 600, "x.example"))
        fillup.process(DnsRecord(0.0, "x.example", RRType.CNAME, 600, "y.example"))
        result = lookup.process(
            FlowRecord(ts=1.0, src_ip="10.3.3.3", dst_ip="100.64.0.1", bytes_=1)
        )
        assert result.matched  # terminates despite the poisoned loop
        assert len(result.chain) <= 3

    def test_chain_memoized_for_later_use(self, storage, fillup, lookup):
        """Step 7: multi-hop results are added to NAME-CNAME active."""
        _fill_chain(fillup)
        lookup.process(FlowRecord(ts=1.0, src_ip="10.5.5.5", dst_ip="100.64.0.1", bytes_=1))
        assert lookup.stats.chains_memoized == 1
        assert storage.lookup_cname("edge.cdn.net", now=1.0) in ("r0.cdn.net", "service.com")

    def test_memoization_can_be_disabled(self, storage, fillup):
        config = FlowDNSConfig(memoize_cname_chains=False)
        lookup = LookUpProcessor(storage, config)
        _fill_chain(fillup)
        lookup.process(FlowRecord(ts=1.0, src_ip="10.5.5.5", dst_ip="100.64.0.1", bytes_=1))
        assert lookup.stats.chains_memoized == 0

    def test_chain_length_histogram(self, fillup, lookup):
        _fill_chain(fillup)
        fillup.process(DnsRecord(0.0, "plain.example", RRType.A, 60, "10.7.7.7"))
        lookup.process(FlowRecord(ts=1.0, src_ip="10.5.5.5", dst_ip="100.64.0.1", bytes_=1))
        lookup.process(FlowRecord(ts=1.0, src_ip="10.7.7.7", dst_ip="100.64.0.1", bytes_=1))
        assert lookup.stats.chain_lengths == {3: 1, 1: 1}


class TestDirection:
    def test_destination_lookup(self, fillup, storage):
        config = FlowDNSConfig(direction=FlowDirection.DESTINATION)
        lookup = LookUpProcessor(storage, config)
        fillup.process(DnsRecord(0.0, "site.example", RRType.A, 60, "10.1.1.1"))
        flow = FlowRecord(ts=1.0, src_ip="100.64.0.1", dst_ip="10.1.1.1", bytes_=10)
        assert lookup.process(flow).matched

    def test_both_falls_back_to_destination(self, fillup, storage):
        config = FlowDNSConfig(direction=FlowDirection.BOTH)
        lookup = LookUpProcessor(storage, config)
        fillup.process(DnsRecord(0.0, "site.example", RRType.A, 60, "10.1.1.1"))
        flow = FlowRecord(ts=1.0, src_ip="100.64.0.1", dst_ip="10.1.1.1", bytes_=10)
        result = lookup.process(flow)
        assert result.matched and result.service == "site.example"
