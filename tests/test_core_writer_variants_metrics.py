"""Tests for the writer, variant factory, and cost-model metrics."""

import io

import pytest

from repro.core.config import FlowDNSConfig
from repro.core.lookup import CorrelationResult
from repro.core.metrics import CostModel, CostModelParams, EngineReport, IntervalCounters, IntervalSample
from repro.core.variants import FIGURE3_VARIANTS, FIGURE7_VARIANTS, Variant, config_for
from repro.core.writer import (
    NULL_SERVICE,
    DiscardSink,
    WriteWorker,
    format_result,
    parse_result_line,
)
from repro.netflow.records import FlowRecord


def _result(matched=True, bytes_=100, ts=10.0):
    flow = FlowRecord(ts=ts, src_ip="10.0.0.1", dst_ip="100.64.0.9",
                      src_port=443, dst_port=50001, packets=3, bytes_=bytes_)
    chain = ("edge.cdn.net", "svc.example") if matched else ()
    return CorrelationResult(flow=flow, chain=chain, ts=ts)


class TestFormatParse:
    def test_matched_row_round_trip(self):
        row = format_result(_result())
        parsed = parse_result_line(row)
        assert parsed["service"] == "svc.example"
        assert parsed["chain"] == ("edge.cdn.net", "svc.example")
        assert parsed["bytes"] == 100

    def test_null_row(self):
        row = format_result(_result(matched=False))
        assert f"\t{NULL_SERVICE}\t" in row
        parsed = parse_result_line(row)
        assert parsed["service"] is None and parsed["chain"] == ()

    def test_comments_and_blank_skipped(self):
        assert parse_result_line("# header") is None
        assert parse_result_line("   ") is None

    def test_malformed_row_raises(self):
        with pytest.raises(ValueError):
            parse_result_line("a\tb\tc")


class TestWriteWorker:
    def test_writes_header_and_rows(self):
        sink = io.StringIO()
        worker = WriteWorker(sink)
        worker.write(_result())
        lines = sink.getvalue().splitlines()
        assert lines[0].startswith("#")
        assert len(lines) == 2

    def test_delay_tracking(self):
        worker = WriteWorker(DiscardSink())
        worker.write(_result(ts=10.0), now=40.0)
        worker.write(_result(ts=10.0), now=25.0)
        assert worker.stats.max_delay == 30.0
        assert worker.stats.mean_delay == 22.5

    def test_matched_rows_counted(self):
        worker = WriteWorker(DiscardSink())
        worker.write_many([_result(), _result(matched=False)])
        assert worker.stats.rows == 2
        assert worker.stats.matched_rows == 1

    def test_discard_sink_reports_length(self):
        assert DiscardSink().write("hello") == 5


class TestVariantFactory:
    def test_main_has_everything_on(self):
        config = config_for(Variant.MAIN)
        assert config.split_enabled and config.clear_up_enabled
        assert config.rotation_enabled and config.long_enabled and not config.exact_ttl

    def test_no_split(self):
        assert config_for(Variant.NO_SPLIT).split_enabled is False
        assert config_for(Variant.NO_SPLIT).effective_num_split == 1

    def test_no_clear_up(self):
        assert config_for(Variant.NO_CLEAR_UP).clear_up_enabled is False

    def test_no_rotation(self):
        assert config_for(Variant.NO_ROTATION).rotation_enabled is False

    def test_no_long(self):
        assert config_for(Variant.NO_LONG).long_enabled is False

    def test_exact_ttl(self):
        assert config_for(Variant.EXACT_TTL).exact_ttl is True

    def test_base_config_preserved(self):
        base = FlowDNSConfig(num_split=20)
        assert config_for(Variant.NO_ROTATION, base).num_split == 20

    def test_figure_variant_sets(self):
        assert Variant.MAIN in FIGURE3_VARIANTS
        assert Variant.NO_SPLIT not in FIGURE7_VARIANTS  # "complete overlap with Main"
        assert len(FIGURE3_VARIANTS) == 5 and len(FIGURE7_VARIANTS) == 4


class TestCostModel:
    def _counters(self, dns=1000, flows=5000, duration=100.0):
        c = IntervalCounters()
        c.duration = duration
        c.dns_records = dns
        c.flow_records = flows
        c.writes = flows
        return c

    def test_cpu_has_worker_baseline(self):
        params = CostModelParams()
        model = CostModel(params, num_splits=10, exact_ttl=False, workers=60)
        empty = IntervalCounters()
        empty.duration = 100.0
        assert model.cpu_percent(empty) == 60 * params.per_worker_cpu_percent

    def test_cpu_grows_with_rate(self):
        model = CostModel(CostModelParams(rate_scale=100), 10, False, 8)
        low = model.cpu_percent(self._counters(flows=1000))
        high = model.cpu_percent(self._counters(flows=10000))
        assert high > low

    def test_split_overhead_increases_cpu(self):
        """Section 6: splitting consumes more CPU for the same data."""
        params = CostModelParams(rate_scale=100)
        split = CostModel(params, num_splits=10, exact_ttl=False, workers=8)
        unsplit = CostModel(params, num_splits=1, exact_ttl=False, workers=8)
        counters = self._counters()
        assert split.cpu_percent(counters) > unsplit.cpu_percent(counters)

    def test_exact_ttl_multiplies_demand(self):
        params = CostModelParams(rate_scale=100)
        main = CostModel(params, 10, False, 8)
        exact = CostModel(params, 10, True, 8)
        counters = self._counters()
        assert exact.demand_units_per_sec(counters) > 10 * main.demand_units_per_sec(counters)

    def test_loss_zero_under_capacity(self):
        model = CostModel(CostModelParams(rate_scale=1), 10, False, 8)
        assert model.loss_rate(self._counters()) == 0.0

    def test_loss_when_demand_exceeds_capacity(self):
        params = CostModelParams(rate_scale=1e6, capacity_units_per_sec=1e6)
        model = CostModel(params, 10, False, 8)
        loss = model.loss_rate(self._counters())
        assert 0.0 < loss < 1.0

    def test_memory_scales_with_entries(self):
        params = CostModelParams(entry_scale=1000)
        model = CostModel(params, 10, False, 8)
        assert model.memory_bytes(2000) > model.memory_bytes(1000)

    def test_exact_ttl_memory_multiplier(self):
        params = CostModelParams(entry_scale=1000)
        main = CostModel(params, 10, False, 8)
        exact = CostModel(params, 10, True, 8)
        delta_main = main.memory_bytes(1000) - main.memory_bytes(0)
        delta_exact = exact.memory_bytes(1000) - exact.memory_bytes(0)
        assert abs(delta_exact / delta_main - params.exact_ttl_entry_multiplier) < 1e-9

    def test_zero_duration_interval(self):
        model = CostModel(CostModelParams(), 10, False, 8)
        c = IntervalCounters()
        assert model.demand_units_per_sec(c) == 0.0
        assert model.loss_rate(c) == 0.0


class TestEngineReport:
    def test_correlation_rate(self):
        report = EngineReport(total_bytes=1000, correlated_bytes=817)
        assert abs(report.correlation_rate - 0.817) < 1e-9

    def test_empty_report_is_zeroes(self):
        report = EngineReport()
        assert report.correlation_rate == 0.0
        assert report.mean_cpu_percent == 0.0
        assert report.peak_memory_gb == 0.0

    def test_sample_aggregates(self):
        samples = [
            IntervalSample(0, 1, cpu_percent=100, memory_bytes=2**30, traffic_bytes=10,
                           correlated_bytes=5, dns_records=1, flow_records=1,
                           loss_rate=0.0, map_entries=10),
            IntervalSample(1, 2, cpu_percent=300, memory_bytes=3 * 2**30, traffic_bytes=10,
                           correlated_bytes=10, dns_records=1, flow_records=1,
                           loss_rate=0.0, map_entries=10),
        ]
        report = EngineReport(samples=samples)
        assert report.mean_cpu_percent == 200
        assert report.peak_memory_gb == 3.0
        assert report.hourly_correlation_rates() == [0.5, 1.0]

    def test_interval_sample_properties(self):
        sample = IntervalSample(0, 1, 0, 2**30, traffic_bytes=100, correlated_bytes=81,
                                dns_records=0, flow_records=0, loss_rate=0, map_entries=0)
        assert sample.memory_gb == 1.0
        assert abs(sample.correlation_rate - 0.81) < 1e-9
