"""Tests for the analysis layer: DBL, coverage, invalid domains, accuracy."""

import pytest

from repro.analysis.accuracy import names_per_ip
from repro.analysis.invalid_domains import analyze_invalid_domains
from repro.analysis.public_resolvers import (
    DEFAULT_PUBLIC_RESOLVERS,
    PublicResolverList,
    estimate_coverage,
    is_dns_flow,
)
from repro.analysis.spamdbl import DomainBlockList, analyze_abuse_traffic
from repro.core.lookup import CorrelationResult
from repro.dns.rr import RRType
from repro.dns.stream import DnsRecord
from repro.netflow.records import FlowRecord
from repro.workloads.isp import PUBLIC_RESOLVER_IPS


def _result(src_ip, service, dst_ip="100.64.0.1", ts=0.0, bytes_=100,
            packets=1, dst_port=49152):
    flow = FlowRecord(ts=ts, src_ip=src_ip, dst_ip=dst_ip, src_port=443,
                      dst_port=dst_port, packets=packets, bytes_=bytes_)
    chain = (service,) if service else ()
    return CorrelationResult(flow=flow, chain=chain, ts=ts)


class TestDomainBlockList:
    def test_classify(self):
        dbl = DomainBlockList.from_categories({"spam": ["bad.example"], "botnet": ["dga.example"]})
        assert dbl.classify("bad.example") == "spam"
        assert dbl.classify("BAD.example.") == "spam"
        assert dbl.classify("good.example") is None

    def test_expiry(self):
        dbl = DomainBlockList.from_categories({"spam": ["bad.example"]}, expires_at=100.0)
        assert dbl.classify("bad.example", ts=50.0) == "spam"
        assert dbl.classify("bad.example", ts=150.0) is None

    def test_non_dbl_categories_excluded(self):
        dbl = DomainBlockList.from_categories({"mal-formatted": ["_x.example"]})
        assert len(dbl) == 0

    def test_query_counters(self):
        dbl = DomainBlockList.from_categories({"spam": ["bad.example"]})
        dbl.classify("bad.example")
        dbl.classify("good.example")
        assert dbl.queries == 2 and dbl.hits == 1


class TestAbuseTraffic:
    def _dbl(self):
        return DomainBlockList.from_categories(
            {"spam": ["spam1.example", "spam2.example"], "botnet": ["bot.example"]}
        )

    def test_category_aggregation(self):
        service_bytes = {
            "spam1.example": 1000,
            "spam2.example": 200,
            "bot.example": 500,
            "benign.example": 100000,
        }
        report = analyze_abuse_traffic(service_bytes, self._dbl())
        assert report.category_counts() == {"spam": 2, "botnet": 1}
        assert report.category_bytes() == {"spam": 1200, "botnet": 500}
        assert report.suspicious_names == 3

    def test_abuse_byte_share(self):
        report = analyze_abuse_traffic(
            {"spam1.example": 50, "benign.example": 9950}, self._dbl()
        )
        assert abs(report.abuse_byte_share() - 0.005) < 1e-9

    def test_sample_limit_respected(self):
        service_bytes = {f"d{i}.example": 1000 - i for i in range(100)}
        service_bytes["spam1.example"] = 1  # below the cut
        report = analyze_abuse_traffic(service_bytes, self._dbl(), sample_limit=50)
        assert report.sampled_names == 50
        assert report.suspicious_names == 0

    def test_cumulative_curve_monotone(self):
        service_bytes = {"spam1.example": 900, "spam2.example": 100}
        report = analyze_abuse_traffic(service_bytes, self._dbl())
        curve = report.cumulative_curve("spam")
        assert curve == [(1, 0.9), (2, 1.0)]


class TestCoverage:
    def _flows(self, public_every=20, n=200):
        flows = []
        for i in range(n):
            resolver = (
                "8.8.8.8" if i % public_every == 0 else "10.255.0.53"
            )
            flows.append(
                FlowRecord(ts=float(i), src_ip="100.64.0.1", dst_ip=resolver,
                           src_port=50000, dst_port=53, protocol=17, bytes_=80)
            )
            flows.append(
                FlowRecord(ts=float(i), src_ip="198.51.100.1", dst_ip="100.64.0.1",
                           src_port=443, dst_port=50000, bytes_=5000)
            )
        return flows

    def test_one_in_twenty_gives_95pct(self):
        report = estimate_coverage(self._flows(public_every=20))
        assert abs(report.coverage - 0.95) < 0.01
        assert report.dns_flows == 200

    def test_non_dns_flows_ignored(self):
        report = estimate_coverage(self._flows())
        assert report.dns_flows == 200  # the 443 flows are excluded

    def test_is_dns_flow(self):
        dns = FlowRecord(ts=0, src_ip="1.1.1.1", dst_ip="2.2.2.2", dst_port=53)
        dot = FlowRecord(ts=0, src_ip="1.1.1.1", dst_ip="2.2.2.2", dst_port=853)
        web = FlowRecord(ts=0, src_ip="1.1.1.1", dst_ip="2.2.2.2", dst_port=443)
        assert is_dns_flow(dns) and is_dns_flow(dot) and not is_dns_flow(web)

    def test_reply_direction_uses_src(self):
        reply = FlowRecord(ts=0, src_ip="8.8.8.8", dst_ip="100.64.0.1",
                           src_port=53, dst_port=50000)
        report = estimate_coverage([reply])
        assert report.public_resolver_flows == 1

    def test_workload_list_is_subset_of_analysis_list(self):
        """The workload's resolver IPs must be recognised by the analysis."""
        assert set(PUBLIC_RESOLVER_IPS) <= set(DEFAULT_PUBLIC_RESOLVERS)

    def test_resolver_list_membership(self):
        resolvers = PublicResolverList()
        assert "1.1.1.1" in resolvers
        assert "10.0.0.1" not in resolvers


class TestInvalidDomains:
    def test_invalid_names_and_bytes_counted(self):
        results = [
            _result("10.0.0.1", "_bad.example.com", bytes_=400),
            _result("10.0.0.2", "good.example.com", bytes_=600),
        ]
        report = analyze_invalid_domains(results)
        assert report.invalid_names == 1
        assert report.names_seen == 2
        assert report.bytes_invalid == 400
        assert abs(report.invalid_byte_share - 0.4) < 1e-9

    def test_underscore_share(self):
        results = [
            _result("10.0.0.1", "_a.example", bytes_=1),
            _result("10.0.0.2", "_b.example", bytes_=1),
            _result("10.0.0.3", "bad!char.example", bytes_=1),
        ]
        report = analyze_invalid_domains(results)
        assert report.char_counts["_"] == 2

    def test_reply_traffic_detected(self):
        download = _result("10.0.0.1", "_vpn.example", dst_ip="100.64.0.9",
                           bytes_=900, packets=10)
        reply_flow = FlowRecord(ts=1.0, src_ip="100.64.0.9", dst_ip="10.0.0.1",
                                src_port=50000, dst_port=1194, protocol=17,
                                packets=2, bytes_=200)
        reply = CorrelationResult(flow=reply_flow, chain=(), ts=1.0)
        report = analyze_invalid_domains([download, reply])
        assert report.replying_clients == {"100.64.0.9"}
        assert report.replied_domains == {"_vpn.example"}
        assert report.reply_ports.get("openvpn") == 1
        assert report.packets_bidirectional == 2

    def test_cumulative_curve(self):
        results = [
            _result("10.0.0.1", "_big.example", bytes_=900),
            _result("10.0.0.2", "_small.example", bytes_=100),
        ]
        curve = analyze_invalid_domains(results).cumulative_curve()
        assert curve == [(1, 0.9), (2, 1.0)]

    def test_unmatched_flows_only_counted_in_totals(self):
        results = [_result("10.0.0.1", None, bytes_=123)]
        report = analyze_invalid_domains(results)
        assert report.bytes_total == 123
        assert report.names_seen == 0


class TestNamesPerIp:
    def _records(self):
        return [
            DnsRecord(0.0, "a.example", RRType.A, 60, "10.0.0.1"),
            DnsRecord(10.0, "b.example", RRType.A, 60, "10.0.0.1"),  # 2nd name, same IP
            DnsRecord(20.0, "c.example", RRType.A, 60, "10.0.0.2"),
            DnsRecord(30.0, "c.example", RRType.A, 60, "10.0.0.3"),  # 2nd IP, same name
            DnsRecord(400.0, "z.example", RRType.A, 60, "10.0.0.9"),  # outside window
        ]

    def test_window_respected(self):
        report = names_per_ip(self._records(), window=300.0, t_start=0.0)
        assert "10.0.0.9" not in report.names_per_ip

    def test_names_per_ip_counts(self):
        report = names_per_ip(self._records(), window=300.0, t_start=0.0)
        assert report.names_per_ip["10.0.0.1"] == 2
        assert report.names_per_ip["10.0.0.2"] == 1

    def test_single_name_fraction(self):
        report = names_per_ip(self._records(), window=300.0, t_start=0.0)
        assert abs(report.single_name_fraction - 2 / 3) < 1e-9

    def test_multi_ip_name_fraction(self):
        report = names_per_ip(self._records(), window=300.0, t_start=0.0)
        # c.example has 2 IPs; a and b have one each.
        assert abs(report.multi_ip_name_fraction - 1 / 3) < 1e-9

    def test_cname_records_ignored(self):
        records = [DnsRecord(0.0, "x.example", RRType.CNAME, 60, "y.example")]
        report = names_per_ip(records, window=300.0, t_start=0.0)
        assert report.names_per_ip == {}

    def test_accuracy_lower_bound(self):
        report = names_per_ip(self._records(), window=300.0, t_start=0.0)
        assert report.expected_accuracy_lower_bound == report.single_name_fraction

    def test_ecdf(self):
        report = names_per_ip(self._records(), window=300.0, t_start=0.0)
        ecdf = report.names_per_ip_ecdf()
        assert ecdf.at(1) == pytest.approx(2 / 3)
        assert ecdf.at(2) == 1.0

    def test_empty_input(self):
        report = names_per_ip([], window=300.0)
        assert report.single_name_fraction == 0.0
        assert report.multi_ip_name_fraction == 0.0
