"""Tests for the two-website accuracy capture (Section 4)."""

import pytest

from repro.workloads.pcaplike import two_site_capture


class TestCaptureShape:
    def test_different_ips_scenario(self):
        capture = two_site_capture(same_ip=False)
        ips = {r.answer for r in capture.dns_records}
        assert len(ips) == 2

    def test_same_ip_scenario(self):
        capture = two_site_capture(same_ip=True)
        ips = {r.answer for r in capture.dns_records}
        assert len(ips) == 1

    def test_flow_count(self):
        capture = two_site_capture(same_ip=False, flows_per_site=10)
        assert len(capture.flow_records) == 20

    def test_truth_covers_all_flows(self):
        capture = two_site_capture(same_ip=False)
        assert set(capture.truth.keys()) == set(range(len(capture.flow_records)))

    def test_deterministic(self):
        a = two_site_capture(same_ip=True, seed=5)
        b = two_site_capture(same_ip=True, seed=5)
        assert a.flow_records == b.flow_records

    def test_dns_precedes_flows(self):
        capture = two_site_capture(same_ip=False)
        last_dns = max(r.ts for r in capture.dns_records)
        first_flow = min(f.ts for f in capture.flow_records)
        assert last_dns < first_flow


class TestAccuracyOf:
    def test_perfect_prediction(self):
        capture = two_site_capture(same_ip=False)
        predicted = [capture.truth[i] for i in range(len(capture.flow_records))]
        assert capture.accuracy_of(predicted) == 1.0

    def test_all_wrong(self):
        capture = two_site_capture(same_ip=False)
        predicted = ["nope.example"] * len(capture.flow_records)
        assert capture.accuracy_of(predicted) == 0.0

    def test_length_mismatch_raises(self):
        capture = two_site_capture(same_ip=False)
        with pytest.raises(ValueError):
            capture.accuracy_of(["x"])
