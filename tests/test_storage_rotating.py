"""Tests for repro.storage.rotating (the Active/Inactive/Long store)."""

import pytest

from repro.storage.rotating import RotatingStore, StoreBank, Tier
from repro.util.errors import ConfigError


def bank(**kwargs):
    defaults = dict(clear_up_interval=3600.0, num_splits=4, shard_count=4)
    defaults.update(kwargs)
    return StoreBank(**defaults)


class TestPutLookup:
    def test_short_ttl_goes_active(self):
        b = bank()
        b.put(0, "1.1.1.1", "a.example", ttl=60, ts=0.0)
        value, tier = b.deep_lookup(0, "1.1.1.1")
        assert value == "a.example" and tier == Tier.ACTIVE

    def test_long_ttl_goes_long(self):
        b = bank()
        b.put(0, "2.2.2.2", "b.example", ttl=7200, ts=0.0)
        _value, tier = b.deep_lookup(0, "2.2.2.2")
        assert tier == Tier.LONG

    def test_boundary_ttl_goes_long(self):
        b = bank()
        b.put(0, "3.3.3.3", "c.example", ttl=3600, ts=0.0)
        assert b.deep_lookup(0, "3.3.3.3")[1] == Tier.LONG

    def test_miss_returns_none(self):
        b = bank()
        assert b.deep_lookup(0, "9.9.9.9") == (None, None)
        assert b.stats.misses == 1

    def test_labels_route_to_splits(self):
        b = bank(num_splits=2)
        b.put(0, "k", "v0", ttl=1, ts=0.0)
        b.put(1, "k", "v1", ttl=1, ts=0.0)
        assert b.deep_lookup(0, "k")[0] == "v0"
        assert b.deep_lookup(1, "k")[0] == "v1"

    def test_overwrite_counted(self):
        b = bank()
        b.put(0, "1.1.1.1", "first.example", ttl=60, ts=0.0)
        b.put(0, "1.1.1.1", "second.example", ttl=60, ts=1.0)
        assert b.stats.overwrites == 1
        # Same value again is not an overwrite.
        b.put(0, "1.1.1.1", "second.example", ttl=60, ts=2.0)
        assert b.stats.overwrites == 1

    def test_validation(self):
        with pytest.raises(ConfigError):
            StoreBank(clear_up_interval=0)
        with pytest.raises(ConfigError):
            StoreBank(clear_up_interval=10, num_splits=0)


class TestClearUpRotation:
    def test_rotation_moves_active_to_inactive(self):
        b = bank()
        b.put(0, "1.1.1.1", "a.example", ttl=60, ts=0.0)
        # Crossing the interval rotates before the new put lands.
        b.put(0, "4.4.4.4", "d.example", ttl=60, ts=4000.0)
        value, tier = b.deep_lookup(0, "1.1.1.1")
        assert value == "a.example" and tier == Tier.INACTIVE
        assert b.deep_lookup(0, "4.4.4.4")[1] == Tier.ACTIVE

    def test_second_rotation_drops_old_generation(self):
        b = bank()
        b.put(0, "1.1.1.1", "a.example", ttl=60, ts=0.0)
        b.put(0, "2.2.2.2", "b.example", ttl=60, ts=4000.0)
        b.put(0, "3.3.3.3", "c.example", ttl=60, ts=8000.0)
        assert b.deep_lookup(0, "1.1.1.1") == (None, None)
        assert b.deep_lookup(0, "2.2.2.2")[1] == Tier.INACTIVE

    def test_long_survives_rotations(self):
        b = bank()
        b.put(0, "5.5.5.5", "long.example", ttl=86400, ts=0.0)
        for ts in (4000.0, 8000.0, 12000.0):
            b.put(0, "x", "y", ttl=60, ts=ts)
        assert b.deep_lookup(0, "5.5.5.5")[1] == Tier.LONG

    def test_clear_up_timer_driven_by_record_ts(self):
        b = bank()
        b.put(0, "1.1.1.1", "a.example", ttl=60, ts=100.0)
        # 3599 seconds later: no rotation yet.
        assert b.maybe_clear_up(3699.0) is False
        assert b.deep_lookup(0, "1.1.1.1")[1] == Tier.ACTIVE
        assert b.maybe_clear_up(3700.0) is True
        assert b.deep_lookup(0, "1.1.1.1")[1] == Tier.INACTIVE

    def test_rotation_stats(self):
        b = bank()
        b.put(0, "1.1.1.1", "a.example", ttl=60, ts=0.0)
        b.force_clear_up()
        assert b.stats.rotations == 1
        assert b.stats.entries_rotated == 1
        assert b.stats.entries_cleared == 1


class TestAblationFlags:
    def test_no_clear_up_keeps_everything(self):
        b = bank(clear_up_enabled=False)
        b.put(0, "1.1.1.1", "a.example", ttl=60, ts=0.0)
        b.put(0, "2.2.2.2", "b.example", ttl=60, ts=100000.0)
        assert b.deep_lookup(0, "1.1.1.1")[1] == Tier.ACTIVE

    def test_no_rotation_discards_on_clear(self):
        b = bank(rotation_enabled=False)
        b.put(0, "1.1.1.1", "a.example", ttl=60, ts=0.0)
        b.put(0, "2.2.2.2", "b.example", ttl=60, ts=4000.0)
        assert b.deep_lookup(0, "1.1.1.1") == (None, None)

    def test_no_long_places_long_ttl_in_active(self):
        b = bank(long_enabled=False)
        b.put(0, "5.5.5.5", "long.example", ttl=86400, ts=0.0)
        assert b.deep_lookup(0, "5.5.5.5")[1] == Tier.ACTIVE
        b.put(0, "x", "y", ttl=60, ts=4000.0)
        b.put(0, "x2", "y2", ttl=60, ts=8000.0)
        assert b.deep_lookup(0, "5.5.5.5") == (None, None)

    def test_long_clear_every(self):
        b = bank(long_clear_every=2)
        b.put(0, "5.5.5.5", "long.example", ttl=86400, ts=0.0)
        b.force_clear_up()
        assert b.deep_lookup(0, "5.5.5.5")[1] == Tier.LONG
        b.force_clear_up()
        assert b.deep_lookup(0, "5.5.5.5") == (None, None)


class TestAccounting:
    def test_entry_counts(self):
        b = bank()
        b.put(0, "1.1.1.1", "a", ttl=60, ts=0.0)
        b.put(1, "2.2.2.2", "b", ttl=86400, ts=0.0)
        counts = b.entry_counts()
        assert counts["active"] == 1 and counts["long"] == 1 and counts["inactive"] == 0
        assert b.total_entries() == 2

    def test_hit_rate(self):
        b = bank()
        b.put(0, "1.1.1.1", "a", ttl=60, ts=0.0)
        b.deep_lookup(0, "1.1.1.1")
        b.deep_lookup(0, "miss")
        assert b.stats.hit_rate == 0.5

    def test_split_sizes(self):
        b = bank(num_splits=3)
        for label in range(9):
            b.put(label, f"k{label}", "v", ttl=60, ts=0.0)
        assert b.split_sizes() == [3, 3, 3]

    def test_put_active_direct(self):
        b = bank()
        b.put_active(0, "memo", "result")
        assert b.deep_lookup(0, "memo")[0] == "result"


class TestRotatingStore:
    def test_aggregates_banks(self):
        store = RotatingStore(bank(), bank(clear_up_interval=7200.0))
        store.ip_name.put(0, "1.1.1.1", "a", ttl=60, ts=0.0)
        store.name_cname.put(0, "edge", "svc", ttl=600, ts=0.0)
        assert store.total_entries() == 2
        counts = store.entry_counts()
        assert counts["ip_name"]["active"] == 1
        assert counts["name_cname"]["active"] == 1
