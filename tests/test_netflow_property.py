"""Property-based tests for the NetFlow codecs."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netflow.collector import FlowCollector
from repro.netflow.exporter import FlowExporter
from repro.netflow.ipfix import IpfixSession
from repro.netflow.records import FlowRecord
from repro.netflow.v9 import V9Session
from repro.util.errors import ParseError
from repro.netflow.v5 import decode_v5

_octet = st.integers(min_value=1, max_value=254)
_flow = st.builds(
    FlowRecord,
    ts=st.floats(min_value=1e6, max_value=2e6, allow_nan=False),
    src_ip=st.tuples(_octet, _octet, _octet, _octet).map(lambda t: ".".join(map(str, t))),
    dst_ip=st.tuples(_octet, _octet, _octet, _octet).map(lambda t: ".".join(map(str, t))),
    src_port=st.integers(min_value=0, max_value=65535),
    dst_port=st.integers(min_value=0, max_value=65535),
    protocol=st.integers(min_value=0, max_value=255),
    packets=st.integers(min_value=0, max_value=2**31),
    bytes_=st.integers(min_value=0, max_value=2**31),
)


@given(st.lists(_flow, min_size=1, max_size=40))
@settings(max_examples=40, deadline=None)
def test_v9_export_ingest_preserves_flows(flows):
    exporter = FlowExporter(version=9, batch_size=16)
    collector = FlowCollector()
    decoded = []
    for datagram in exporter.export(flows):
        decoded.extend(collector.ingest(datagram))
    assert len(decoded) == len(flows)
    for orig, back in zip(flows, decoded):
        assert back.src_ip == orig.src_ip
        assert back.dst_ip == orig.dst_ip
        assert back.src_port == orig.src_port
        assert back.bytes_ == orig.bytes_ & 0xFFFFFFFF


@given(st.lists(_flow, min_size=1, max_size=30))
@settings(max_examples=40, deadline=None)
def test_v5_round_trip_volume_conserved(flows):
    exporter = FlowExporter(version=5, batch_size=30)
    collector = FlowCollector()
    decoded = []
    for datagram in exporter.export(flows):
        decoded.extend(collector.ingest(datagram))
    assert sum(f.packets for f in decoded) == sum(f.packets & 0xFFFFFFFF for f in flows)


@given(st.binary(min_size=0, max_size=120))
@settings(max_examples=200)
def test_decoders_never_crash_on_garbage(data):
    try:
        decode_v5(data)
    except ParseError:
        pass
    try:
        V9Session().decode(data)
    except ParseError:
        pass
    try:
        IpfixSession().decode(data)
    except ParseError:
        pass


@given(st.binary(min_size=0, max_size=120))
@settings(max_examples=100)
def test_collector_never_raises(data):
    collector = FlowCollector()
    assert isinstance(collector.ingest(data), list)
