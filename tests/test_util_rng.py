"""Tests for repro.util.rng."""

import pytest

from repro.util.rng import derive_rng, make_rng, weighted_choice, zipf_sampler


class TestMakeRng:
    def test_same_seed_same_sequence(self):
        a = make_rng(7)
        b = make_rng(7)
        assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]

    def test_different_seeds_differ(self):
        assert make_rng(1).random() != make_rng(2).random()


class TestDeriveRng:
    def test_deterministic(self):
        a = derive_rng(5, "dns")
        b = derive_rng(5, "dns")
        assert a.random() == b.random()

    def test_labels_are_independent(self):
        a = derive_rng(5, "dns-0")
        b = derive_rng(5, "dns-1")
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]

    def test_seed_changes_stream(self):
        assert derive_rng(1, "x").random() != derive_rng(2, "x").random()


class TestZipfSampler:
    def test_rejects_bad_args(self):
        rng = make_rng(0)
        with pytest.raises(ValueError):
            zipf_sampler(0, 1.0, rng)
        with pytest.raises(ValueError):
            zipf_sampler(10, -0.5, rng)

    def test_samples_in_range(self):
        rng = make_rng(0)
        sample = zipf_sampler(100, 1.0, rng)
        for _ in range(1000):
            assert 0 <= sample() < 100

    def test_head_is_heavier_than_tail(self):
        rng = make_rng(0)
        sample = zipf_sampler(50, 1.0, rng)
        draws = [sample() for _ in range(5000)]
        head = sum(1 for d in draws if d < 5)
        tail = sum(1 for d in draws if d >= 45)
        assert head > tail * 3

    def test_alpha_zero_is_uniformish(self):
        rng = make_rng(0)
        sample = zipf_sampler(10, 0.0, rng)
        draws = [sample() for _ in range(10000)]
        counts = [draws.count(i) for i in range(10)]
        assert max(counts) < 2 * min(counts)


class TestWeightedChoice:
    def test_honours_zero_weight(self):
        rng = make_rng(1)
        for _ in range(100):
            assert weighted_choice(rng, ["a", "b"], [1.0, 0.0]) == "a"

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            weighted_choice(make_rng(0), ["a"], [1.0, 2.0])

    def test_rejects_non_positive_total(self):
        with pytest.raises(ValueError):
            weighted_choice(make_rng(0), ["a", "b"], [0.0, 0.0])

    def test_distribution_roughly_matches_weights(self):
        rng = make_rng(2)
        draws = [weighted_choice(rng, ["x", "y"], [3.0, 1.0]) for _ in range(4000)]
        x_share = draws.count("x") / len(draws)
        assert 0.70 < x_share < 0.80
