"""Tests for repro.core.config and repro.core.labeler."""

import ipaddress

import pytest

from repro.core.config import (
    DEFAULT_A_CLEAR_UP_INTERVAL,
    DEFAULT_C_CLEAR_UP_INTERVAL,
    DEFAULT_CNAME_LOOP_LIMIT,
    DEFAULT_NUM_SPLIT,
    FlowDNSConfig,
)
from repro.core.labeler import ip_label, last_octet_label, name_label
from repro.util.errors import ConfigError


class TestTable1Defaults:
    """Table 1 / Appendix A.6: the deployed parameter values."""

    def test_a_clear_up_interval(self):
        assert FlowDNSConfig().a_clear_up_interval == 3600.0 == DEFAULT_A_CLEAR_UP_INTERVAL

    def test_c_clear_up_interval(self):
        assert FlowDNSConfig().c_clear_up_interval == 7200.0 == DEFAULT_C_CLEAR_UP_INTERVAL

    def test_num_split(self):
        assert FlowDNSConfig().num_split == 10 == DEFAULT_NUM_SPLIT

    def test_loop_limit(self):
        assert FlowDNSConfig().cname_loop_limit == 6 == DEFAULT_CNAME_LOOP_LIMIT

    def test_all_mechanisms_enabled_by_default(self):
        config = FlowDNSConfig()
        assert config.split_enabled and config.clear_up_enabled
        assert config.rotation_enabled and config.long_enabled
        assert not config.exact_ttl


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"a_clear_up_interval": 0},
            {"c_clear_up_interval": -1},
            {"num_split": 0},
            {"cname_loop_limit": 0},
            {"fillup_workers_per_stream": 0},
            {"write_workers": 0},
            {"stream_buffer_capacity": 0},
            {"exact_ttl_sweep_interval": 0},
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ConfigError):
            FlowDNSConfig(**kwargs)


class TestEffectiveNumSplit:
    def test_enabled(self):
        assert FlowDNSConfig(num_split=10).effective_num_split == 10

    def test_disabled_is_one(self):
        config = FlowDNSConfig(num_split=10, split_enabled=False)
        assert config.effective_num_split == 1


class TestReplace:
    def test_replace_returns_modified_copy(self):
        base = FlowDNSConfig()
        changed = base.replace(num_split=5)
        assert changed.num_split == 5
        assert base.num_split == 10


class TestIpLabel:
    def test_deterministic(self):
        assert ip_label("10.0.0.1") == ip_label("10.0.0.1")

    def test_accepts_address_objects(self):
        assert ip_label(ipaddress.ip_address("10.0.0.1")) == ip_label("10.0.0.1")

    def test_ipv6_supported(self):
        assert isinstance(ip_label("2001:db8::1"), int)

    def test_spreads_over_splits(self):
        """A /24's hosts must not all land in one split (the reason the
        default labeler hashes instead of using the last octet)."""
        labels = {ip_label(f"198.51.100.{i}") % 10 for i in range(1, 255)}
        assert len(labels) == 10

    def test_differs_from_last_octet_on_dense_pools(self):
        same_last_octet = [f"10.{i}.0.7" for i in range(50)]
        hashed = {ip_label(ip) % 10 for ip in same_last_octet}
        last = {last_octet_label(ip) % 10 for ip in same_last_octet}
        assert len(last) == 1  # all 7
        assert len(hashed) > 1


class TestNameLabel:
    def test_deterministic(self):
        assert name_label("edge.cdn.net") == name_label("edge.cdn.net")

    def test_distinct_names_spread(self):
        labels = {name_label(f"e{i}.cdn.net") % 10 for i in range(200)}
        assert len(labels) == 10


class TestLastOctetLabel:
    def test_is_final_byte(self):
        assert last_octet_label("10.0.0.77") == 77
        assert last_octet_label("2001:db8::ff") == 0xFF
