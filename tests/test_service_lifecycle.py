"""Service-lifecycle tests for ``flowdns serve``.

The supervised-service contract, end to end:

* the **kill-and-restart drill** the acceptance criteria mandate — a
  real ``serve`` subprocess snapshotting periodically, SIGKILLed (no
  drain, no final snapshot), then a second subprocess restoring from
  the periodic snapshot and correlating flows at non-degraded match
  rates with *zero* DNS re-fed;
* the live **metrics endpoint** (``--metrics-port``): scrape a running
  engine over real HTTP and read the service gauges back;
* **restore degradation**: a corrupt or missing snapshot must warn and
  start empty, never abort the service;
* the new serve flags through ``EngineConfig.from_args``.
"""

import os
import signal
import socket
import subprocess
import sys
import threading
import time

import pytest

from repro.core.async_engine import AsyncEngine, TcpDnsIngest
from repro.core.config import EngineConfig, FlowDNSConfig
from repro.core.monitor import MetricsHttpServer, parse_exposition
from repro.core.storage_adapter import DnsStorage
from repro.dns.rr import RRType, a_record
from repro.dns.stream import DnsRecord
from repro.dns.tcp import frame_messages
from repro.dns.wire import DnsMessage, Question, encode_message
from repro.netflow.exporter import FlowExporter
from repro.netflow.records import FlowRecord
from repro.netflow.udp import send_datagrams
from repro.storage.snapshot import load_snapshot, save_snapshot
from repro.util.errors import ConfigError, ParseError

_SRC = os.path.join(os.path.dirname(os.path.abspath(__file__)), os.pardir, "src")


def _drill_wires(count):
    """One A record per message: drill{i}.example -> 10.77.0.{i+1}."""
    wires = []
    for i in range(count):
        msg = DnsMessage()
        name = f"drill{i}.example"
        msg.questions.append(Question(name, RRType.A))
        msg.answers.append(a_record(name, f"10.77.0.{i + 1}", 300))
        wires.append(encode_message(msg))
    return wires


def _http_get(addr, path="/metrics"):
    """One blocking HTTP GET; returns (status_line, body_text)."""
    with socket.create_connection(addr, timeout=5.0) as conn:
        conn.sendall(f"GET {path} HTTP/1.1\r\nHost: flowdns\r\n\r\n".encode())
        data = b""
        while True:
            chunk = conn.recv(65536)
            if not chunk:
                break
            data += chunk
    head, _, body = data.partition(b"\r\n\r\n")
    return head.split(b"\r\n", 1)[0].decode(), body.decode()


class _ServeSession:
    """A ``flowdns serve`` subprocess with live stderr line capture."""

    def __init__(self, *argv):
        env = dict(os.environ)
        env["PYTHONPATH"] = _SRC + os.pathsep + env.get("PYTHONPATH", "")
        self.proc = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve", *argv],
            stdout=subprocess.DEVNULL,
            stderr=subprocess.PIPE,
            text=True,
            env=env,
        )
        self.lines = []
        self._reader = threading.Thread(target=self._drain, daemon=True)
        self._reader.start()

    def _drain(self):
        for line in self.proc.stderr:
            self.lines.append(line.rstrip("\n"))

    def wait_line(self, prefix, timeout=30.0):
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            for line in list(self.lines):
                if line.startswith(prefix):
                    return line
            if self.proc.poll() is not None:
                break
            time.sleep(0.02)
        raise AssertionError(
            f"serve never printed {prefix!r}; stderr so far:\n" + self.stderr()
        )

    def address(self, prefix):
        """Parse 'label : host:port' from the announce line."""
        host, _, port = self.wait_line(prefix).split(":", 1)[1].strip().rpartition(":")
        return host, int(port)

    def stderr(self):
        return "\n".join(self.lines)

    def stop(self):
        if self.proc.poll() is None:
            self.proc.kill()
            self.proc.wait(timeout=10.0)
        self._reader.join(timeout=10.0)


class TestKillRestartDrill:
    """The acceptance drill: periodic snapshot -> SIGKILL -> restart ->
    correlation resumes at non-degraded match rates."""

    def test_sigkilled_serve_restarts_from_periodic_snapshot(self, tmp_path):
        count = 40
        snap = str(tmp_path / "drill-snapshot.json")
        out = str(tmp_path / "drill-out.tsv")

        # --- Session 1: fill the maps over live TCP, snapshot every 0.2s.
        first = _ServeSession(
            "--flow-port", "0", "--dns-port", "0",
            "--snapshot", snap, "--snapshot-interval", "0.2",
        )
        try:
            first.wait_line("snapshots          :")
            dns_addr = first.address("DNS over TCP")
            with socket.create_connection(dns_addr, timeout=5.0) as conn:
                conn.sendall(frame_messages(_drill_wires(count)))
            # Wait for a *periodic* snapshot that captured every record.
            deadline = time.monotonic() + 30.0
            while True:
                assert time.monotonic() < deadline, (
                    "no complete periodic snapshot; stderr:\n" + first.stderr()
                )
                try:
                    if load_snapshot(DnsStorage(FlowDNSConfig()), snap) == count:
                        break
                except (ParseError, OSError):
                    pass
                time.sleep(0.05)
            # SIGKILL: no drain, no final snapshot — the periodic file is
            # all the restart has.
            first.proc.kill()
            first.proc.wait(timeout=10.0)
        finally:
            first.stop()

        # --- Session 2: restore from the snapshot, feed only flows.
        second = _ServeSession(
            "--flow-port", "0", "--dns-port", "0",
            "--snapshot", snap, "--metrics-port", "0", "--output", out,
        )
        try:
            flow_addr = second.address("NetFlow/IPFIX (UDP)")
            metrics_addr = second.address("metrics (HTTP)")
            now = time.time()
            flows = [
                FlowRecord(ts=now, src_ip=f"10.77.0.{i % count + 1}",
                           dst_ip="100.64.0.1", bytes_=64)
                for i in range(count * 3)
            ]
            for datagram in FlowExporter(version=9, batch_size=20).export(flows):
                send_datagrams([datagram], flow_addr)
                time.sleep(0.002)
            deadline = time.monotonic() + 30.0
            while True:
                assert time.monotonic() < deadline, (
                    "flows never reached the lookup lane; stderr:\n"
                    + second.stderr()
                )
                _, body = _http_get(metrics_addr)
                metrics = parse_exposition(body)
                if metrics.get("flowdns_flow_records_total", 0) >= len(flows):
                    break
                time.sleep(0.05)
            # Mid-run scrape: the restore is visible, and no DNS was fed —
            # every match below comes from the snapshot alone.
            assert metrics["flowdns_restored_entries"] == count
            assert metrics["flowdns_dns_records_total"] == 0
            second.proc.send_signal(signal.SIGTERM)
            assert second.proc.wait(timeout=30.0) == 0
        finally:
            second.stop()

        stderr = second.stderr()
        # Non-degraded: every single flow correlated after the restart.
        assert f"flows correlated     : {count * 3}/{count * 3}" in stderr
        assert f"restored from snap   : {count} entries" in stderr
        rows = [
            line for line in open(out, encoding="utf-8")
            if not line.startswith("#")
        ]
        assert len(rows) == count * 3
        assert all("drill" in row for row in rows)


class TestMetricsEndpoint:
    def test_live_scrape_exposes_service_state(self):
        """Scrape a running AsyncEngine over real HTTP mid-run."""
        engine = AsyncEngine(EngineConfig(metrics_port=0))
        dns_ingest = TcpDnsIngest(clock=lambda: 5.0)
        result = {}
        thread = threading.Thread(
            target=lambda: result.update(report=engine.run([dns_ingest], [])),
            daemon=True,
        )
        thread.start()
        dns_addr = dns_ingest.wait_ready()
        with socket.create_connection(dns_addr, timeout=5.0) as conn:
            conn.sendall(frame_messages(_drill_wires(10)))
        deadline = time.monotonic() + 20.0
        while engine.dns_records_seen < 10 or engine.metrics_address is None:
            assert time.monotonic() < deadline, "fill lane stalled"
            time.sleep(0.01)

        status, body = _http_get(engine.metrics_address)
        engine.request_stop()
        thread.join(timeout=20.0)
        assert not thread.is_alive()

        assert "200" in status
        metrics = parse_exposition(body)
        assert metrics["flowdns_dns_records_total"] == 10.0
        assert metrics["flowdns_map_entries"] == 10.0
        assert metrics["flowdns_storage_evictions_total"] == 0.0
        assert metrics["flowdns_worker_restarts_total"] == 0.0
        assert metrics["flowdns_snapshots_written_total"] == 0.0
        assert metrics["flowdns_snapshot_age_seconds"] == -1.0
        assert 'flowdns_ingest_received_total{source="tcp-dns' in body
        assert result["report"].dns_records == 10

    def test_render_failure_returns_500_not_crash(self):
        """A failing renderer must answer 500 and keep serving."""

        def _boom():
            raise RuntimeError("boom")

        async def scenario():
            server = MetricsHttpServer(_boom)
            await server.start()
            try:
                import asyncio

                reader, writer = await asyncio.open_connection(*server.address)
                writer.write(b"GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n")
                await writer.drain()
                data = await reader.read()
                writer.close()
                # Still alive for the next scrape.
                reader2, writer2 = await asyncio.open_connection(*server.address)
                writer2.write(b"GET / HTTP/1.1\r\n\r\n")
                await writer2.drain()
                data2 = await reader2.read()
                writer2.close()
                return data, data2
            finally:
                await server.stop()

        import asyncio

        data, data2 = asyncio.run(scenario())
        assert b"500" in data.split(b"\r\n", 1)[0]
        assert b"boom" in data
        assert b"500" in data2.split(b"\r\n", 1)[0]


class TestRestoreDegradation:
    def _record(self):
        return DnsRecord(1.0, "a.example", RRType.A, 300, "10.1.1.1")

    def test_corrupt_snapshot_warns_and_starts_empty(self, tmp_path):
        path = str(tmp_path / "snap.json")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("{broken json")
        engine = AsyncEngine(EngineConfig(snapshot_path=path))
        report = engine.run([[self._record()]], [[]], dns_first=True)
        assert report.restored_entries == 0
        assert any(
            "snapshot restore" in w and "starting empty" in w
            for w in report.warnings
        )
        # The service still ran — and the end-of-run snapshot replaced
        # the corrupt file with a good one.
        assert report.dns_records == 1
        assert load_snapshot(DnsStorage(FlowDNSConfig()), path) == 1

    def test_mismatched_snapshot_warns_and_starts_empty(self, tmp_path):
        path = str(tmp_path / "snap.json")
        donor = DnsStorage(FlowDNSConfig(num_split=3))
        donor.add_record(self._record())
        save_snapshot(donor, path)
        engine = AsyncEngine(EngineConfig(
            snapshot_path=path, flowdns=FlowDNSConfig(num_split=5)
        ))
        report = engine.run([[]], [[]])
        assert report.restored_entries == 0
        assert any("starting empty" in w for w in report.warnings)

    def test_missing_snapshot_is_a_quiet_cold_start(self, tmp_path):
        path = str(tmp_path / "absent.json")
        engine = AsyncEngine(EngineConfig(snapshot_path=path))
        report = engine.run([[self._record()]], [[]], dns_first=True)
        assert report.restored_entries == 0
        assert report.warnings == []
        # The final-on-drain snapshot pins the run's state for next time.
        assert report.snapshots_written == 1
        assert os.path.exists(path)

    def test_offline_restore_resumes_matching_without_dns(self, tmp_path):
        path = str(tmp_path / "snap.json")
        donor = DnsStorage(FlowDNSConfig())
        for i in range(50):
            donor.add_record(
                DnsRecord(1.0, f"svc{i}.example", RRType.A, 300, f"10.5.0.{i + 1}")
            )
        save_snapshot(donor, path)
        flows = [
            FlowRecord(ts=30.0, src_ip=f"10.5.0.{i + 1}",
                       dst_ip="100.64.0.1", bytes_=10)
            for i in range(50)
        ]
        engine = AsyncEngine(EngineConfig(snapshot_path=path))
        report = engine.run([], [list(flows)])
        assert report.restored_entries == 50
        assert report.matched_flows == 50

    def test_exact_ttl_with_snapshot_rejected(self):
        with pytest.raises(ConfigError, match="exact-TTL"):
            EngineConfig(snapshot_path="s.json",
                         flowdns=FlowDNSConfig(exact_ttl=True))


class TestServeFlagValidation:
    """The new serve flags through EngineConfig.from_args."""

    def _live_ns(self, **kw):
        import argparse

        base = dict(host=None, flow_port=None, dns_port=None, duration=None,
                    num_split=10, ingest_workers=None, capture=None)
        base.update(kw)
        return argparse.Namespace(**base)

    def test_snapshot_interval_requires_snapshot(self):
        args = self._live_ns(snapshot=None, snapshot_interval=5.0)
        with pytest.raises(ConfigError, match="--snapshot-interval"):
            EngineConfig.from_args(args, "serve")

    def test_snapshot_interval_must_be_positive(self):
        args = self._live_ns(snapshot="s.json", snapshot_interval=0.0)
        with pytest.raises(ConfigError, match="positive"):
            EngineConfig.from_args(args, "serve")

    def test_negative_stats_interval_rejected(self):
        args = self._live_ns(stats_interval=-1.0)
        with pytest.raises(ConfigError):
            EngineConfig.from_args(args, "serve")

    def test_negative_max_entries_rejected(self):
        args = self._live_ns(max_entries=-1)
        with pytest.raises(ConfigError):
            EngineConfig.from_args(args, "serve")

    def test_service_flags_reach_engine_config(self):
        args = self._live_ns(snapshot="s.json", snapshot_interval=2.5,
                             stats_interval=1.0, metrics_port=0,
                             max_entries=100)
        ec = EngineConfig.from_args(args, "serve")
        assert ec.snapshot_path == "s.json"
        assert ec.snapshot_interval == 2.5
        assert ec.stats_interval == 1.0
        assert ec.metrics_port == 0
        assert ec.flowdns.max_entries_per_map == 100

    def test_snapshot_interval_defaults_without_flag(self):
        ec = EngineConfig.from_args(self._live_ns(snapshot="s.json"), "serve")
        assert ec.snapshot_path == "s.json"
        assert ec.snapshot_interval == 60.0

    def test_cli_rejects_orphan_snapshot_interval(self, capsys):
        from repro.cli import main

        rc = main(["serve", "--duration", "1", "--flow-port", "0",
                   "--dns-port", "0", "--snapshot-interval", "5"])
        assert rc == 2
        assert "--snapshot-interval" in capsys.readouterr().err

    def test_replay_accepts_max_entries(self):
        import argparse

        args = argparse.Namespace(engine="threaded", num_split=10,
                                  max_entries=500)
        ec = EngineConfig.from_args(args, "replay")
        assert ec.flowdns.max_entries_per_map == 500
