"""Failure injection: the pipeline must degrade, never die.

A production correlator at an ISP sees corrupted datagrams, poisoned DNS
(cycles, absurd TTLs), desynchronised TCP streams, and floods. These
tests push each failure class through the real code paths and assert the
pipeline keeps correlating everything else.
"""

import random

from engine_gates import gated_flows

from repro.core.config import FlowDNSConfig
from repro.core.engine import ThreadedEngine
from repro.core.flowdns import FlowDNS
from repro.core.simulation import SimulationEngine
from repro.dns.rr import RRType, a_record
from repro.dns.stream import DnsRecord
from repro.dns.tcp import TcpFrameDecoder, frame_messages
from repro.dns.wire import DnsMessage, Question, encode_message
from repro.netflow.exporter import FlowExporter
from repro.netflow.records import FlowRecord


def _good_wire(i):
    msg = DnsMessage()
    msg.questions.append(Question(f"svc{i}.example", RRType.A))
    msg.answers.append(a_record(f"svc{i}.example", f"10.9.0.{i + 1}", 60))
    return encode_message(msg)


class TestCorruptedDnsStream:
    def test_bit_flipped_messages_dropped_rest_correlates(self):
        rng = random.Random(0)
        items = []
        for i in range(40):
            wire = bytearray(_good_wire(i))
            if i % 4 == 0:  # flip bytes in a quarter of the messages
                for _ in range(3):
                    wire[rng.randrange(len(wire))] ^= 0xFF
            items.append((float(i), bytes(wire)))
        flows = [
            FlowRecord(ts=100.0 + i, src_ip=f"10.9.0.{i + 1}", dst_ip="100.64.0.1", bytes_=10)
            for i in range(40)
        ]
        engine = ThreadedEngine(FlowDNSConfig())
        report = engine.run([items], [gated_flows(engine, flows)])
        # At least the 30 untouched messages must correlate. (A flipped
        # message may still parse if the flips hit benign fields.)
        assert report.matched_flows >= 28
        invalid = sum(p.stats.invalid for p in engine._fillup_processors)
        assert invalid + report.matched_flows >= 38

    def test_truncated_messages_counted(self):
        items = [(0.0, _good_wire(0)[:10]), (1.0, _good_wire(1))]
        engine = ThreadedEngine(FlowDNSConfig())
        flows = [FlowRecord(ts=10.0, src_ip="10.9.0.2", dst_ip="100.64.0.1", bytes_=5)]
        report = engine.run([items], [gated_flows(engine, flows)])
        assert report.matched_flows == 1


class TestPoisonedDnsData:
    def test_cname_cycle_does_not_hang(self):
        fd = FlowDNS()
        fd.add_dns(DnsRecord(0.0, "a.example", RRType.CNAME, 600, "b.example"))
        fd.add_dns(DnsRecord(0.0, "b.example", RRType.CNAME, 600, "a.example"))
        fd.add_dns(DnsRecord(0.0, "b.example", RRType.A, 60, "10.1.1.1"))
        result = fd.correlate(
            FlowRecord(ts=1.0, src_ip="10.1.1.1", dst_ip="100.64.0.1", bytes_=1)
        )
        assert result.matched  # terminated, with some answer

    def test_self_referential_cname(self):
        fd = FlowDNS()
        fd.add_dns(DnsRecord(0.0, "loop.example", RRType.CNAME, 600, "loop.example"))
        fd.add_dns(DnsRecord(0.0, "loop.example", RRType.A, 60, "10.1.1.2"))
        result = fd.correlate(
            FlowRecord(ts=1.0, src_ip="10.1.1.2", dst_ip="100.64.0.1", bytes_=1)
        )
        assert result.matched

    def test_absurd_ttl_goes_long_not_crash(self):
        fd = FlowDNS()
        fd.add_dns(DnsRecord(0.0, "x.example", RRType.A, 2**31 - 1, "10.2.2.2"))
        assert fd.entry_counts()["ip_name"]["long"] == 1

    def test_deep_chain_capped_by_loop_limit(self):
        fd = FlowDNS(FlowDNSConfig(cname_loop_limit=6))
        names = [f"hop{i}.example" for i in range(30)]
        fd.add_dns(DnsRecord(0.0, names[0], RRType.A, 60, "10.3.3.3"))
        for i in range(29):
            fd.add_dns(DnsRecord(0.0, names[i + 1], RRType.CNAME, 600, names[i]))
        result = fd.correlate(
            FlowRecord(ts=1.0, src_ip="10.3.3.3", dst_ip="100.64.0.1", bytes_=1)
        )
        assert len(result.chain) == 7  # IP hit + 6 hops


class TestDesyncedTcpStream:
    def test_decoder_recovers_complete_prefix(self):
        wires = [_good_wire(i) for i in range(5)]
        stream = frame_messages(wires)
        decoder = TcpFrameDecoder()
        # Feed all but the last 3 bytes: 4 complete + 1 incomplete frame.
        out = decoder.feed(stream[:-3])
        assert out == wires[:4]
        assert decoder.pending_bytes > 0


class TestFloods:
    def test_flow_flood_with_no_dns_never_matches_but_completes(self):
        flows = [
            FlowRecord(ts=float(i), src_ip="172.16.0.1", dst_ip="100.64.0.1", bytes_=1)
            for i in range(5000)
        ]
        report = SimulationEngine(FlowDNSConfig()).run([], flows)
        assert report.matched_flows == 0
        assert report.flow_records == 5000

    def test_dns_flood_with_no_flows(self):
        records = [
            DnsRecord(float(i), f"n{i}.example", RRType.A, 60, f"10.{i % 200}.{i % 250}.1")
            for i in range(5000)
        ]
        report = SimulationEngine(FlowDNSConfig()).run(records, [])
        assert report.dns_records == 5000
        assert report.total_bytes == 0

    def test_duplicate_records_idempotent(self):
        fd = FlowDNS()
        for _ in range(100):
            fd.add_dns(DnsRecord(0.0, "same.example", RRType.A, 60, "10.4.4.4"))
        assert fd.entry_counts()["ip_name"]["active"] == 1
        assert fd.storage.overwrites() == 0  # same value: not an overwrite


class TestMixedVersionDatagramStream:
    def test_v5_v9_ipfix_interleaved_on_one_stream(self):
        flows_a = [
            FlowRecord(ts=1000.0 + i, src_ip=f"10.6.0.{i + 1}", dst_ip="100.64.0.1",
                       bytes_=50) for i in range(10)
        ]
        flows_b = [
            FlowRecord(ts=1100.0 + i, src_ip=f"10.6.1.{i + 1}", dst_ip="100.64.0.1",
                       bytes_=50) for i in range(10)
        ]
        flows_c = [
            FlowRecord(ts=1200.0 + i, src_ip=f"10.6.2.{i + 1}", dst_ip="100.64.0.1",
                       bytes_=50) for i in range(10)
        ]
        datagrams = (
            list(FlowExporter(version=5, batch_size=10).export(flows_a))
            + list(FlowExporter(version=9, batch_size=10).export(flows_b))
            + list(FlowExporter(version=10, batch_size=10).export(flows_c))
            + [b"\x00\x63garbage"]
        )
        dns = [
            DnsRecord(0.0, f"s{j}-{i}.example", RRType.A, 60, f"10.6.{j}.{i + 1}")
            for j in range(3)
            for i in range(10)
        ]
        engine = ThreadedEngine(FlowDNSConfig())
        report = engine.run([dns], [gated_flows(engine, datagrams)])
        assert report.flow_records == 30
        assert report.matched_flows == 30
