"""Tests for the hand-over-AS matrix (the planning use case's fallback view)."""

from repro.bgp.correlate import handover_matrix
from repro.bgp.rib import Rib, Route
from repro.core.lookup import CorrelationResult
from repro.netflow.records import FlowRecord


def _result(src_ip, service="svc.example", bytes_=100):
    flow = FlowRecord(ts=0.0, src_ip=src_ip, dst_ip="100.64.0.1", bytes_=bytes_)
    chain = (service,) if service else ()
    return CorrelationResult(flow=flow, chain=chain, ts=0.0)


def _rib():
    return Rib([
        Route("198.51.100.0/24", 64501, as_path=(64700, 64501)),
        Route("192.0.2.0/25", 64511, as_path=(64700, 64511)),
        Route("192.0.2.128/25", 64512, as_path=(64701, 64512)),
    ])


class TestHandoverMatrix:
    def test_pairs_accumulated(self):
        matrix = handover_matrix(
            [
                _result("198.51.100.1", bytes_=500),
                _result("192.0.2.1", bytes_=300),
                _result("192.0.2.200", bytes_=200),
            ],
            _rib(),
        )
        assert matrix.bytes_by_pair[(64501, 64700)] == 500
        assert matrix.bytes_by_pair[(64511, 64700)] == 300
        assert matrix.bytes_by_pair[(64512, 64701)] == 200

    def test_by_handover(self):
        matrix = handover_matrix(
            [_result("198.51.100.1", bytes_=500), _result("192.0.2.1", bytes_=300)],
            _rib(),
        )
        assert matrix.by_handover() == {64700: 800}

    def test_shift_if_broken(self):
        matrix = handover_matrix(
            [
                _result("198.51.100.1", bytes_=500),
                _result("192.0.2.1", bytes_=300),
                _result("192.0.2.200", bytes_=200),
            ],
            _rib(),
        )
        assert matrix.shift_if_broken(64700) == 800
        assert matrix.shift_if_broken(64701) == 200
        assert matrix.shift_if_broken(65000) == 0

    def test_origins_behind(self):
        matrix = handover_matrix(
            [_result("198.51.100.1"), _result("192.0.2.1")], _rib()
        )
        assert matrix.origins_behind(64700) == [64501, 64511]

    def test_unrouted_and_unmatched(self):
        matrix = handover_matrix(
            [_result("203.0.113.9", bytes_=70), _result("198.51.100.1", service=None)],
            _rib(),
        )
        assert matrix.unrouted_bytes == 70
        assert matrix.bytes_by_pair == {}

    def test_route_without_path_has_none_handover(self):
        rib = Rib([Route("10.0.0.0/8", 64800)])
        matrix = handover_matrix([_result("10.1.2.3", bytes_=10)], rib)
        assert matrix.bytes_by_pair == {(64800, None): 10}
        assert matrix.by_handover() == {None: 10}
