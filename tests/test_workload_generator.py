"""Statistical and determinism validation of the workload generator.

Three layers of pinning:

* **Statistical** — the generator's emitted *distributions* match what
  the knobs claim: domain draws are Zipf(alpha) (KS against the exact
  harmonic CDF, plus a cross-exponent discrimination check so the test
  could actually fail), flow sizes follow the named CDF tables, and
  inter-arrival gaps are exponential at the configured rate. All tests
  are seeded, so there is no flake budget: thresholds are hard.
* **Determinism** — one ``(seed, params)`` pair produces byte-identical
  ``.fdc`` output across runs, across generator instances, and — via
  subprocesses — across ``PYTHONHASHSEED`` values. The same subprocess
  harness pins golden-corpus regeneration
  (``python -m repro.replay.scenarios``) byte-stable, the promise
  :mod:`repro.util.rng`'s docstring makes.
* **Equivalence** — :class:`PackedV9Exporter` (the generator's fast
  encode path) is byte-identical to ``FlowExporter(version=9)`` over
  mixed-family batches, odd lengths, and template-refresh cadences.
"""

import hashlib
import io
import math
import os
import pathlib
import subprocess
import sys
from types import SimpleNamespace

import pytest

from repro.cli import main as cli_main
from repro.netflow.exporter import FlowExporter, PackedV9Exporter
from repro.netflow.records import FlowRecord
from repro.netflow.v9 import V9Session
from repro.replay.capture import LANE_DNS, LANE_FLOW, MAGIC
from repro.util.errors import ConfigError
from repro.util.rng import make_rng
from repro.workloads.generator import (
    GeneratorParams,
    SIZE_CDFS,
    SizeCdf,
    TTL_PROFILES,
    WorkloadGenerator,
    generate_capture,
    ttl_model_for,
)

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
GOLDEN_DIR = REPO_ROOT / "tests" / "data" / "golden"


def _ks_threshold(n: int, c: float = 1.63) -> float:
    """One-sample KS critical value; c=1.63 is the alpha=0.01 constant.

    The draws are seeded, so this is a hard bound, not a flake budget."""
    return c / math.sqrt(n)


def _pure_zipf_params(**overrides) -> GeneratorParams:
    """A config whose popularity column is an *exact* Zipf(alpha).

    Zeroing the long-lived / rare-origin / abuse knobs removes every
    popularity perturbation ``build_universe`` applies (and
    ``abuse_byte_share=0`` builds the benign-only universe)."""
    base = dict(
        long_lived_fraction=0.0,
        rare_origin_fraction=0.0,
        abuse_byte_share=0.0,
    )
    base.update(overrides)
    return GeneratorParams(**base)


class TestZipfPopularity:
    N_DRAWS = 20000

    def _rank_draws(self, alpha: float, seed: int = 3):
        params = _pure_zipf_params(
            seed=seed,
            zipf_alpha=alpha,
            n_domains=200,
            clients=2000,
            duration=650.0,
        )
        gen = WorkloadGenerator(params)
        rank_of = {s.name: i for i, s in enumerate(gen.universe.services)}
        draws = []
        for _, service in gen.events():
            draws.append(rank_of[service.name])
            if len(draws) == self.N_DRAWS:
                break
        assert len(draws) == self.N_DRAWS, "duration too short for the draw budget"
        return draws

    @staticmethod
    def _zipf_cdf(n: int, alpha: float):
        weights = [1.0 / (rank + 1) ** alpha for rank in range(n)]
        total = sum(weights)
        cdf, acc = [], 0.0
        for w in weights:
            acc += w / total
            cdf.append(acc)
        return cdf

    @staticmethod
    def _ks_stat(draws, cdf):
        n_domains = len(cdf)
        counts = [0] * n_domains
        for rank in draws:
            counts[rank] += 1
        n = len(draws)
        worst, acc = 0.0, 0
        for rank in range(n_domains):
            acc += counts[rank]
            gap = abs(acc / n - cdf[rank])
            if gap > worst:
                worst = gap
        return worst

    @pytest.mark.parametrize("alpha", [0.6, 0.9, 1.2])
    def test_ranks_follow_exact_zipf(self, alpha):
        draws = self._rank_draws(alpha)
        cdf = self._zipf_cdf(200, alpha)
        assert self._ks_stat(draws, cdf) < _ks_threshold(len(draws))

    def test_ks_discriminates_between_exponents(self):
        """The statistical test must be able to fail: alpha=0.6 draws
        against the alpha=1.2 reference CDF (and vice versa) blow far
        past the critical value."""
        flat = self._rank_draws(0.6)
        steep = self._rank_draws(1.2)
        cdf_flat = self._zipf_cdf(200, 0.6)
        cdf_steep = self._zipf_cdf(200, 1.2)
        bound = _ks_threshold(self.N_DRAWS)
        assert self._ks_stat(flat, cdf_steep) > 5 * bound
        assert self._ks_stat(steep, cdf_flat) > 5 * bound

    def test_events_are_time_ordered_and_bounded(self):
        params = _pure_zipf_params(seed=5, clients=500, duration=40.0, start_ts=100.0)
        last = params.start_ts
        for ts, _ in WorkloadGenerator(params).events():
            assert params.start_ts <= ts < params.start_ts + params.duration
            assert ts >= last
            last = ts


class TestPoissonArrivals:
    def test_interarrival_gaps_are_exponential(self):
        """Flat-rate arrivals: the probability-integral transform of the
        gaps is uniform (KS at alpha=0.01, seeded)."""
        params = _pure_zipf_params(seed=7, clients=2000, duration=600.0)
        rate = params.resolution_rate
        times = [ts for ts, _ in WorkloadGenerator(params).events()]
        gaps = [b - a for a, b in zip(times, times[1:])]
        n = len(gaps)
        assert n > 5000
        transformed = sorted(1.0 - math.exp(-rate * g) for g in gaps)
        worst = 0.0
        for i, u in enumerate(transformed):
            worst = max(worst, abs(u - i / n), abs(u - (i + 1) / n))
        assert worst < _ks_threshold(n)

    def test_event_count_matches_rate(self):
        params = _pure_zipf_params(seed=11, clients=1000, duration=300.0)
        count = sum(1 for _ in WorkloadGenerator(params).events())
        expected = params.resolution_rate * params.duration
        assert abs(count - expected) < 5 * math.sqrt(expected)

    def test_diurnal_modulation_thins_the_trough(self):
        """With a diurnal pattern the rate is time-varying: the busiest
        hour of a day-long trace must carry more events than the
        quietest by roughly the configured amplitude."""
        params = _pure_zipf_params(
            seed=13, clients=200, duration=86400.0, diurnal_amplitude=0.8
        )
        per_hour = [0] * 24
        for ts, _ in WorkloadGenerator(params).events():
            per_hour[int(ts // 3600) % 24] += 1
        assert max(per_hour) > 3 * min(per_hour)


class TestFlowSizes:
    @pytest.mark.parametrize("name", ["websearch", "datamining"])
    def test_sizes_follow_named_cdf(self, name):
        params = _pure_zipf_params(
            seed=17, clients=1000, duration=120.0, flow_size_cdf=name
        )
        cdf = SizeCdf.named(name)
        session = V9Session()
        sizes = []
        for frame in WorkloadGenerator(params).frames():
            if frame.lane == LANE_FLOW:
                sizes.extend(rec.bytes_ for rec in session.decode(frame.payload))
        n = len(sizes)
        assert n > 5000
        allowed = set(cdf.sizes)
        assert set(sizes) <= allowed
        for point in cdf.sizes:
            observed = sum(1 for s in sizes if s <= point) / n
            expected = cdf.cdf_at(point)
            sigma = math.sqrt(max(expected * (1 - expected), 1e-6) / n)
            assert abs(observed - expected) < 5 * sigma + 0.005, (
                f"P(size<={point}): observed {observed:.4f}, table {expected:.4f}"
            )

    def test_packets_track_sizes(self):
        """The packet count is derived from bytes at ~MSS granularity, so
        decoded flows must respect bytes/packets <= 1448."""
        params = _pure_zipf_params(seed=19, clients=300, duration=30.0)
        session = V9Session()
        seen = 0
        for frame in WorkloadGenerator(params).frames():
            if frame.lane != LANE_FLOW:
                continue
            for rec in session.decode(frame.payload):
                seen += 1
                assert rec.packets == 1 + rec.bytes_ // 1448
        assert seen > 100

    def test_size_cdf_mean_matches_table(self):
        cdf = SizeCdf.named("uniform")
        assert cdf.mean() == pytest.approx((1024 + 2048 + 4096 + 8192) / 4)
        assert cdf.cdf_at(2048) == pytest.approx(0.5)
        assert cdf.cdf_at(1) == 0.0
        assert cdf.cdf_at(1 << 20) == 1.0


#: Configs the byte-determinism tests sweep — one per materially
#: different code path (v6 answers, short TTL churn, diurnal thinning,
#: invisible resolutions, deep + flat chains).
DETERMINISM_CONFIGS = {
    "default-small": GeneratorParams(seed=23, clients=400, duration=20.0),
    "v6-short-ttl": GeneratorParams(
        seed=29, clients=400, duration=20.0, aaaa_fraction=1.0,
        ttl_profile="short", flow_size_cdf="datamining",
    ),
    "diurnal-invisible": GeneratorParams(
        seed=31, clients=400, duration=20.0, diurnal_amplitude=0.5,
        public_resolver_fraction=0.3, chain_depth=1,
    ),
}


class TestDeterminism:
    @pytest.mark.parametrize("name", sorted(DETERMINISM_CONFIGS))
    def test_same_seed_same_bytes(self, name):
        """Two fresh generator instances over one config produce
        byte-identical captures — the whole pipeline is seeded."""
        params = DETERMINISM_CONFIGS[name]
        first, second = io.BytesIO(), io.BytesIO()
        report_a = WorkloadGenerator(params).write(first)
        report_b = WorkloadGenerator(params).write(second)
        assert first.getvalue() == second.getvalue()
        assert first.getvalue().startswith(MAGIC)
        assert report_a.flows == report_b.flows > 0
        assert report_a.dns_frames == report_b.dns_frames > 0
        assert report_a.wire_bytes == report_b.wire_bytes == len(first.getvalue())

    def test_seed_changes_bytes(self):
        base = DETERMINISM_CONFIGS["default-small"]
        a, b = io.BytesIO(), io.BytesIO()
        generate_capture(base, a)
        generate_capture(base.replace(seed=base.seed + 1), b)
        assert a.getvalue() != b.getvalue()

    def test_any_param_change_changes_bytes(self):
        base = DETERMINISM_CONFIGS["default-small"]
        reference = io.BytesIO()
        generate_capture(base, reference)
        for change in (
            {"zipf_alpha": 1.1},
            {"chain_depth": 2},
            {"ttl_profile": "long"},
            {"flow_size_cdf": "uniform"},
            {"clients": 401},
        ):
            out = io.BytesIO()
            generate_capture(base.replace(**change), out)
            assert out.getvalue() != reference.getvalue(), change

    def test_flow_lane_timestamps_are_monotonic(self):
        """The reorder buffer's whole point: flow frames leave the
        generator in non-decreasing timestamp order even though lags
        scatter flows far past their resolution events."""
        params = GeneratorParams(seed=37, clients=600, duration=30.0)
        last_flow = last_dns = -math.inf
        flow_frames = dns_frames = 0
        for frame in WorkloadGenerator(params).frames():
            if frame.lane == LANE_FLOW:
                assert frame.ts >= last_flow
                last_flow = frame.ts
                flow_frames += 1
            else:
                assert frame.ts >= last_dns
                last_dns = frame.ts
                dns_frames += 1
        assert flow_frames > 0 and dns_frames > 0

    def test_overflow_keeps_buffer_bounded_and_ordered(self):
        """A tiny ``max_pending`` forces the hard-bound path: overflow
        flushes fire, the peak stays near the bound instead of tracking
        the lag horizon, and emission order survives."""
        params = GeneratorParams(
            seed=41, clients=2000, duration=60.0, per_client_rate=0.05,
            lag_mean=8.0, lag_max=30.0, batch_size=8, max_pending=256,
        )
        gen = WorkloadGenerator(params)
        last_flow = -math.inf
        for frame in gen.frames():
            if frame.lane == LANE_FLOW:
                assert frame.ts >= last_flow
                last_flow = frame.ts
        report = gen.last_report
        assert report.overflow_flushes > 0
        # One burst (<= 12 flows) can land on top of a full buffer
        # before the flush triggers.
        assert report.peak_pending <= params.max_pending + 12
        unbounded = WorkloadGenerator(params.replace(max_pending=1 << 16))
        for _ in unbounded.frames():
            pass
        assert unbounded.last_report.peak_pending > params.max_pending
        assert unbounded.last_report.flows == report.flows


def _packed(flow: FlowRecord):
    return (
        flow.ts, flow.src_ip.packed, flow.dst_ip.packed, flow.src_port,
        flow.dst_port, flow.protocol, flow.packets, flow.bytes_,
    )


def _random_flows(n: int, seed: int = 0):
    rng = make_rng(seed)
    flows = []
    for i in range(n):
        roll = rng.random()
        if roll < 0.55:
            src = f"10.{rng.randrange(256)}.{rng.randrange(256)}.{rng.randrange(1, 255)}"
            dst = f"100.64.{rng.randrange(64)}.{rng.randrange(1, 255)}"
        elif roll < 0.9:
            src = f"2001:db8::{rng.randrange(1, 1 << 16):x}"
            dst = f"2001:db8:feed::{rng.randrange(1, 1 << 16):x}"
        else:
            # Mixed-family pair: both exporters must drop it.
            src = f"10.0.0.{rng.randrange(1, 255)}"
            dst = f"2001:db8::{rng.randrange(1, 1 << 16):x}"
        flows.append(
            FlowRecord(
                ts=100.0 + i * 0.37 + rng.random(),
                src_ip=src,
                dst_ip=dst,
                src_port=rng.randrange(1, 1 << 16),
                dst_port=rng.randrange(1, 1 << 16),
                protocol=rng.choice((6, 17)),
                packets=rng.randrange(1, 1 << 20),
                bytes_=rng.randrange(0, 1 << 31),
            )
        )
    return flows


class TestPackedExporterEquivalence:
    @pytest.mark.parametrize("batch_size,template_refresh", [
        (1, 1), (7, 3), (24, 64), (30, 2),
    ])
    @pytest.mark.parametrize("count", [1, 53, 240])
    def test_byte_identical_to_flow_exporter(self, batch_size, template_refresh, count):
        """The generator's fast path and the reference exporter emit the
        same datagram stream: template cadence, sequence accounting,
        v4/v6 split, mixed-family drops, field packing — everything."""
        flows = _random_flows(count, seed=batch_size * 1000 + count)
        reference = list(
            FlowExporter(
                version=9, batch_size=batch_size, template_refresh=template_refresh
            ).export(flows)
        )
        packed = list(
            PackedV9Exporter(
                batch_size=batch_size, template_refresh=template_refresh
            ).export(_packed(f) for f in flows)
        )
        assert packed == reference

    def test_decode_round_trip(self):
        """Packed datagrams decode back to the fields that went in (for
        the same-family flows; mixed pairs are dropped by contract)."""
        flows = [f for f in _random_flows(90, seed=5)
                 if f.src_ip.version == f.dst_ip.version]
        session = V9Session()
        decoded = []
        for datagram in PackedV9Exporter(batch_size=16).export(
            _packed(f) for f in flows
        ):
            decoded.extend(session.decode(datagram))
        assert len(decoded) == len(flows)

        # Each batch emits its v4 FlowSet before its v6 one, so decode
        # order is not input order; compare the field multisets.
        def fields(flow):
            return (
                str(flow.src_ip), str(flow.dst_ip), flow.src_port,
                flow.dst_port, flow.protocol, flow.packets, flow.bytes_,
            )

        assert sorted(map(fields, decoded)) == sorted(map(fields, flows))


def _run_python(code_or_args, hash_seed, cwd=None):
    """Run a python subprocess under a pinned PYTHONHASHSEED."""
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = str(hash_seed)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    result = subprocess.run(
        [sys.executable] + code_or_args,
        capture_output=True, text=True, env=env, cwd=cwd, timeout=300,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


_GENERATOR_DIGEST_CODE = """
import hashlib, io
from repro.workloads.generator import GeneratorParams, generate_capture
out = io.BytesIO()
generate_capture(
    GeneratorParams(seed=47, clients=300, duration=15.0, aaaa_fraction=0.2,
                    public_resolver_fraction=0.1),
    out,
)
print(hashlib.sha256(out.getvalue()).hexdigest())
"""


class TestCrossHashSeedStability:
    """The rng.py docstring's promise: nothing on the seeded paths routes
    through ``hash()``, so output is byte-stable across interpreter hash
    randomisation — the property that keeps golden corpora regenerable."""

    def test_generator_output_survives_hash_randomisation(self):
        digests = {
            _run_python(["-c", _GENERATOR_DIGEST_CODE], hash_seed).strip()
            for hash_seed in (0, 1, "random")
        }
        assert len(digests) == 1

    def test_scenario_regeneration_matches_checked_in_corpus(self, tmp_path):
        """``python -m repro.replay.scenarios`` under two different hash
        seeds reproduces the checked-in golden corpus byte for byte."""
        for hash_seed in (0, 1):
            out_dir = tmp_path / f"hs{hash_seed}"
            _run_python(
                ["-m", "repro.replay.scenarios", str(out_dir)], hash_seed
            )
            regenerated = sorted(out_dir.glob("*.fdc"))
            assert regenerated, "regeneration produced no captures"
            for path in regenerated:
                golden = GOLDEN_DIR / path.name
                assert golden.exists(), f"unexpected scenario {path.name}"
                assert path.read_bytes() == golden.read_bytes(), (
                    f"{path.name} drifted under PYTHONHASHSEED={hash_seed}"
                )


class TestValidation:
    @pytest.mark.parametrize("overrides", [
        {"clients": 0},
        {"clients": (1 << 22) + 1},
        {"duration": 0.0},
        {"base_rate": -1.0},
        {"per_client_rate": 0.0},
        {"zipf_alpha": -0.1},
        {"chain_depth": 0},
        {"n_domains": 2},
        {"cdn_count": 0},
        {"aaaa_fraction": 1.5},
        {"public_resolver_fraction": 1.0},
        {"diurnal_amplitude": 1.0},
        {"lag_mean": 0.0},
        {"batch_size": 0},
        {"bucket_width": 0.0},
        {"max_pending": 10, "batch_size": 30},
        {"flow_size_cdf": "nope"},
        {"ttl_profile": "nope"},
        {"flow_burst_weights": ((1, 0.5), (2, 0.4))},
    ])
    def test_bad_params_rejected(self, overrides):
        with pytest.raises(ConfigError):
            GeneratorParams(**overrides)

    def test_size_cdf_validation(self):
        with pytest.raises(ConfigError):
            SizeCdf(())
        with pytest.raises(ConfigError):
            SizeCdf(((100, 0.5), (50, 0.5)))  # not increasing
        with pytest.raises(ConfigError):
            SizeCdf(((100, 0.5), (200, 0.4)))  # sums to 0.9
        with pytest.raises(ConfigError):
            SizeCdf(((1 << 32, 1.0),))  # overflows IN_BYTES
        with pytest.raises(ConfigError):
            SizeCdf.named("nope")

    def test_ttl_profiles_build(self):
        for name in TTL_PROFILES:
            assert ttl_model_for(name) is not None
        with pytest.raises(ConfigError):
            ttl_model_for("nope")

    def test_from_args_rejects_rate_conflict(self):
        args = SimpleNamespace(rate=100.0, per_client_rate=0.5)
        with pytest.raises(ConfigError, match="--rate"):
            GeneratorParams.from_args(args)

    def test_from_args_applies_overrides(self):
        args = SimpleNamespace(
            seed=9, clients=123, duration=5.0, rate=None, per_client_rate=None,
            n_domains=50, zipf_alpha=1.1, chain_depth=2, flow_size_cdf="uniform",
            ttl_profile="short", cdn_count=None, aaaa_fraction=None,
            public_resolver_fraction=None, diurnal_amplitude=None,
        )
        params = GeneratorParams.from_args(args)
        assert params.seed == 9
        assert params.clients == 123
        assert params.flow_size_cdf == "uniform"
        assert params.cdn_count == GeneratorParams().cdn_count  # default kept

    def test_expected_flows_estimate(self):
        params = GeneratorParams(seed=43, clients=1000, duration=100.0)
        out = io.BytesIO()
        report = generate_capture(params, out)
        expected = params.expected_flows()
        assert abs(report.flows - expected) < 0.1 * expected


class TestGenerateCli:
    def test_generate_writes_capture(self, tmp_path, capsys):
        path = tmp_path / "gen.fdc"
        code = cli_main([
            "generate", str(path), "--seed", "3", "--clients", "200",
            "--duration", "5",
        ])
        assert code == 0
        assert path.read_bytes().startswith(MAGIC)
        assert "flows" in capsys.readouterr().err

    def test_listings_need_no_output_path(self, capsys):
        assert cli_main(["generate", "--list-size-cdfs"]) == 0
        out = capsys.readouterr().out
        for name in SIZE_CDFS:
            assert name in out
        assert cli_main(["generate", "--list-ttl-profiles"]) == 0
        out = capsys.readouterr().out
        for name in TTL_PROFILES:
            assert name in out

    def test_missing_output_exits_2(self, capsys):
        assert cli_main(["generate"]) == 2
        assert "output path" in capsys.readouterr().err

    def test_config_error_exits_2_without_touching_target(self, tmp_path, capsys):
        path = tmp_path / "never.fdc"
        code = cli_main([
            "generate", str(path), "--rate", "50", "--per-client-rate", "0.1",
        ])
        assert code == 2
        assert not path.exists()
        assert "--rate" in capsys.readouterr().err
