"""The accounting-invariant checker: unit coverage + clean-path baseline.

Two layers: :func:`check_report` must flag every class of conservation
break on hand-built reports, and — the baseline the chaos suite builds
on — every golden capture through every engine *without* faults, plus a
real loopback serve session, must come back invariant-clean.
"""

import io
import pathlib
import socket
import threading
import time

import pytest

from repro.core.config import FlowDNSConfig
from repro.core.invariants import (
    WatchdogTimeout,
    assert_invariants,
    call_with_deadline,
    check_report,
)
from repro.core.metrics import EngineReport, IngestStats, dedupe_warnings
from repro.dns.rr import RRType, a_record
from repro.dns.tcp import frame_messages
from repro.dns.wire import DnsMessage, Question, encode_message
from repro.netflow.exporter import FlowExporter
from repro.netflow.records import FlowRecord
from repro.netflow.udp import send_datagrams
from repro.replay import SCENARIOS, replay_capture
from repro.replay.runner import REPLAY_ENGINES

GOLDEN_DIR = pathlib.Path(__file__).parent / "data" / "golden"


def _clean_report(**overrides) -> EngineReport:
    report = EngineReport(variant_name="threaded")
    for name, value in overrides.items():
        setattr(report, name, value)
    return report


class TestCheckReport:
    def test_clean_report_has_no_violations(self):
        assert check_report(_clean_report()) == []

    def test_negative_counter_flagged(self):
        report = _clean_report(flow_records=-1)
        assert any("flow_records is negative" in v for v in check_report(report))

    def test_ingest_conservation_flagged(self):
        report = _clean_report()
        report.ingest["udp"] = IngestStats(
            name="udp", received=10, accepted=7, dropped=2,
        )
        report.warnings.append("something dropped")
        assert any("conservation broken" in v for v in check_report(report))

    def test_chain_sum_mismatch_flagged(self):
        report = _clean_report(matched_flows=5, flow_records=5,
                               chain_lengths={1: 3})
        assert any("chain-length histogram" in v for v in check_report(report))

    def test_matched_exceeding_decoded_flagged(self):
        report = _clean_report(matched_flows=6, flow_records=5,
                               chain_lengths={1: 6})
        assert any("exceeds" in v for v in check_report(report))

    def test_correlated_bytes_bound(self):
        report = _clean_report(total_bytes=100, correlated_bytes=101)
        assert any("correlated_bytes" in v for v in check_report(report))

    def test_loss_rate_range(self):
        report = _clean_report(overall_loss_rate=1.5)
        report.warnings.append("loss")
        assert any("overall_loss_rate" in v for v in check_report(report))

    def test_eviction_bound_single_stack(self):
        report = _clean_report(dns_records=3, evictions=5)
        assert any("evictions" in v for v in check_report(report))

    def test_eviction_bound_skipped_for_sharded(self):
        report = _clean_report(dns_records=3, evictions=5)
        report.variant_name = "sharded"
        assert check_report(report) == []

    def test_row_count_mismatch_flagged(self):
        report = _clean_report(flow_records=4, matched_flows=0)
        assert any("data rows" in v for v in check_report(report, rows=3))
        assert check_report(report, rows=4) == []

    def test_silent_drop_flagged_and_warning_satisfies(self):
        report = _clean_report()
        report.ingest["udp"] = IngestStats(
            name="udp", received=10, accepted=8, dropped=2,
        )
        assert any("silent loss" in v for v in check_report(report))
        report.warnings.append("source udp dropped 2 of 10 received items")
        assert check_report(report) == []

    def test_silent_loss_rate_flagged(self):
        report = _clean_report(overall_loss_rate=0.01)
        assert any("silent loss" in v for v in check_report(report))

    def test_assert_invariants_raises_with_listing(self):
        report = _clean_report(flow_records=-1, matched_flows=-2)
        with pytest.raises(AssertionError, match="invariant"):
            assert_invariants(report)
        assert_invariants(_clean_report())


class TestWatchdog:
    def test_returns_value(self):
        assert call_with_deadline(lambda: 42, timeout=5.0) == 42

    def test_propagates_exception(self):
        def boom():
            raise ValueError("inner")

        with pytest.raises(ValueError, match="inner"):
            call_with_deadline(boom, timeout=5.0)

    def test_hang_becomes_watchdog_timeout(self):
        with pytest.raises(WatchdogTimeout, match="sleepy"):
            call_with_deadline(
                lambda: time.sleep(30), timeout=0.1, label="sleepy"
            )


class TestDedupeWarnings:
    def test_collapses_repeats_with_counts(self):
        assert dedupe_warnings(["a", "b", "a", "a"]) == ["a ×3", "b"]

    def test_unique_warnings_untouched(self):
        assert dedupe_warnings(["x", "y"]) == ["x", "y"]
        assert dedupe_warnings([]) == []


class TestCleanPathBaseline:
    """Every golden capture × engine, no faults: invariant-clean."""

    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    @pytest.mark.parametrize("engine", REPLAY_ENGINES)
    def test_golden_replay_is_invariant_clean(self, name, engine):
        sink = io.StringIO()
        report = replay_capture(
            str(GOLDEN_DIR / f"{name}.fdc"),
            engine=engine,
            config=FlowDNSConfig(),
            sink=sink,
            num_shards=2,
        )
        rows = [
            line for line in sink.getvalue().splitlines()
            if line and not line.startswith("#")
        ]
        assert_invariants(report, rows=len(rows))
        # The replay sources surface both lanes' ingest accounting.
        assert "replay[dns]" in report.ingest
        assert "replay[flow]" in report.ingest


class TestLiveSessionInvariants:
    """A real loopback serve session's report passes the checker too."""

    CLOCK_TS = 5.0

    def test_live_session_report_is_invariant_clean(self):
        from repro.core.async_engine import AsyncEngine, TcpDnsIngest, UdpFlowIngest

        wires = []
        for i in range(12):
            msg = DnsMessage()
            name = f"inv{i}.example"
            msg.questions.append(Question(name, RRType.A))
            msg.answers.append(a_record(name, f"10.60.0.{i + 1}", 300))
            wires.append(encode_message(msg))
        flows = [
            FlowRecord(ts=10.0 + i % 5, src_ip=f"10.60.0.{i % 12 + 1}",
                       dst_ip="100.64.0.1", bytes_=80 + i)
            for i in range(36)
        ]
        datagrams = list(FlowExporter(version=9, batch_size=16).export(flows))

        dns_ingest = TcpDnsIngest(clock=lambda: self.CLOCK_TS)
        flow_ingest = UdpFlowIngest()
        sink = io.StringIO()
        engine = AsyncEngine(FlowDNSConfig(), sink=sink)
        result = {}
        thread = threading.Thread(
            target=lambda: result.update(
                report=engine.run([dns_ingest], [flow_ingest])
            ),
            daemon=True,
        )
        thread.start()
        dns_addr = dns_ingest.wait_ready()
        flow_addr = flow_ingest.wait_ready()

        with socket.create_connection(dns_addr, timeout=5.0) as conn:
            conn.sendall(frame_messages(wires))
        deadline = time.monotonic() + 20.0
        while engine.dns_records_seen < len(wires):
            assert time.monotonic() < deadline, "DNS ingest stalled"
            time.sleep(0.01)
        for datagram in datagrams:
            send_datagrams([datagram], flow_addr)
            time.sleep(0.001)
        deadline = time.monotonic() + 20.0
        while engine.flows_seen < len(flows):
            assert time.monotonic() < deadline, "flow ingest stalled"
            time.sleep(0.01)
        engine.request_stop()
        thread.join(timeout=20.0)
        assert not thread.is_alive(), "async engine did not shut down"

        report = result["report"]
        rows = [
            line for line in sink.getvalue().splitlines()
            if line and not line.startswith("#")
        ]
        assert report.flow_records == len(flows)
        assert_invariants(report, rows=len(rows))
