"""Differential tests: compiled decoders vs the per-field references.

PR 2's parity contract: for every template and payload the collector can
see, the template-specialized compiled v9/IPFIX decoders and the
memoryview/name-cache DNS decoder must produce records byte-for-byte
identical to the per-field reference implementations. Templates and
payloads are randomized (hypothesis) so the parity claim covers odd
field widths, unknown field types, duplicate fields, padding, and
compression-pointer-heavy DNS messages — not just the standard layouts.
"""

import string
import struct

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dns.name import decode_name, encode_name
from repro.dns.rr import RRType, a_record, cname_record
from repro.dns.wire import DnsMessage, Header, Question, decode_message, encode_message
from repro.netflow.ipfix import (
    FLOW_END_MILLISECONDS,
    IPFIX_HEADER,
    IPFIX_VERSION,
    IpfixSession,
    encode_ipfix_template,
)
from repro.netflow.v9 import (
    IN_BYTES,
    IN_PKTS,
    IPV4_DST_ADDR,
    IPV4_SRC_ADDR,
    IPV6_DST_ADDR,
    IPV6_SRC_ADDR,
    L4_DST_PORT,
    L4_SRC_PORT,
    LAST_SWITCHED,
    FIRST_SWITCHED,
    PROTOCOL,
    SRC_AS,
    TemplateField,
    TemplateRecord,
    V9Session,
    encode_v9_template,
    _pack_header,
)

# ---------------------------------------------------------------------------
# Randomized template layouts. Address fields keep their wire-legal widths
# (4/16) and ports stay <= 2 bytes — the widths real exporters emit and the
# only ones whose decode the references accept without tripping their own
# value checks; everything else (counters, timestamps, unknown types) gets
# randomized widths including the odd ones (3, 5, 6, 7).
# ---------------------------------------------------------------------------

_extra_field = st.one_of(
    st.tuples(st.just(SRC_AS), st.sampled_from([2, 4])),
    st.tuples(st.just(FIRST_SWITCHED), st.sampled_from([4, 8])),
    st.tuples(st.integers(min_value=100, max_value=120), st.integers(min_value=1, max_value=8)),
)


@st.composite
def _templates(draw, ts_type=LAST_SWITCHED, ts_lengths=(4,)):
    v6 = draw(st.booleans())
    addr_len = 16 if v6 else 4
    fields = [
        TemplateField(IPV6_SRC_ADDR if v6 else IPV4_SRC_ADDR, addr_len),
        TemplateField(IPV6_DST_ADDR if v6 else IPV4_DST_ADDR, addr_len),
    ]
    if draw(st.booleans()):
        fields.append(TemplateField(L4_SRC_PORT, draw(st.sampled_from([1, 2]))))
    if draw(st.booleans()):
        fields.append(TemplateField(L4_DST_PORT, 2))
    if draw(st.booleans()):
        fields.append(TemplateField(PROTOCOL, 1))
    fields.append(TemplateField(IN_PKTS, draw(st.sampled_from([2, 3, 4, 8]))))
    fields.append(TemplateField(IN_BYTES, draw(st.sampled_from([4, 5, 8]))))
    if draw(st.booleans()):
        fields.append(TemplateField(ts_type, draw(st.sampled_from(ts_lengths))))
    fields.extend(TemplateField(t, ln) for t, ln in draw(st.lists(_extra_field, max_size=3)))
    draw(st.randoms()).shuffle(fields)
    return TemplateRecord(template_id=draw(st.integers(min_value=256, max_value=400)), fields=tuple(fields))


def _record_block(template, payload_rng, n_records, trailing):
    size = template.record_length * n_records
    raw = payload_rng.getrandbits(8 * size).to_bytes(size, "big") if size else b""
    return raw + b"\x00" * trailing


@given(
    template=_templates(),
    rng=st.randoms(use_true_random=False),
    n_records=st.integers(min_value=0, max_value=5),
    trailing=st.integers(min_value=0, max_value=3),
    unix_secs=st.integers(min_value=0, max_value=2**31),
    sys_uptime=st.integers(min_value=0, max_value=2**31),
)
@settings(max_examples=120, deadline=None)
def test_v9_compiled_matches_reference(template, rng, n_records, trailing, unix_secs, sys_uptime):
    payload = _record_block(template, rng, n_records, trailing)
    flowset = struct.pack("!HH", template.template_id, 4 + len(payload)) + payload
    datagram = _pack_header(n_records, sys_uptime, unix_secs, 0, 0) + flowset
    template_datagram = encode_v9_template([template], unix_secs=unix_secs)

    reference = V9Session(use_compiled=False)
    compiled = V9Session(use_compiled=True)
    reference.decode(template_datagram)
    compiled.decode(template_datagram)
    ref_flows = reference.decode(datagram)
    comp_flows = compiled.decode(datagram)
    assert ref_flows == comp_flows
    for a, b in zip(ref_flows, comp_flows):
        assert a.ts == b.ts
        assert a.extra == b.extra


@given(
    template=_templates(ts_type=FLOW_END_MILLISECONDS, ts_lengths=(4, 6, 8)),
    rng=st.randoms(use_true_random=False),
    n_records=st.integers(min_value=0, max_value=5),
    trailing=st.integers(min_value=0, max_value=3),
    export_secs=st.integers(min_value=0, max_value=2**31),
)
@settings(max_examples=120, deadline=None)
def test_ipfix_compiled_matches_reference(template, rng, n_records, trailing, export_secs):
    payload = _record_block(template, rng, n_records, trailing)
    data_set = struct.pack("!HH", template.template_id, 4 + len(payload)) + payload
    message = (
        IPFIX_HEADER.pack(IPFIX_VERSION, IPFIX_HEADER.size + len(data_set), export_secs, 0, 0)
        + data_set
    )
    template_message = encode_ipfix_template([template], export_secs=export_secs)

    reference = IpfixSession(use_compiled=False)
    compiled = IpfixSession(use_compiled=True)
    reference.decode(template_message)
    compiled.decode(template_message)
    ref_flows = reference.decode(message)
    comp_flows = compiled.decode(message)
    assert ref_flows == comp_flows
    for a, b in zip(ref_flows, comp_flows):
        assert a.ts == b.ts
        assert a.extra == b.extra


def test_zero_field_template_decodes_to_nothing_on_both_paths():
    """Regression: a hostile zero-field template must not hang the decoder."""
    # Hand-built template FlowSet: id 300, field_count 0 (encode helpers
    # can't produce this degenerate layout).
    template_datagram = (
        _pack_header(1, 0, 1000, 0, 0)
        + struct.pack("!HH", 0, 4 + 4)
        + struct.pack("!HH", 300, 0)
    )
    data_datagram = (
        _pack_header(1, 0, 1000, 0, 0)
        + struct.pack("!HH", 300, 4 + 8)
        + b"\x00" * 8
    )
    for use_compiled in (False, True):
        session = V9Session(use_compiled=use_compiled)
        session.decode(template_datagram)
        assert session.decode(data_datagram) == []


def test_compiled_decoder_skips_addressless_templates():
    """A template without addresses yields no flows on either path."""
    template = TemplateRecord(310, (TemplateField(IN_PKTS, 4), TemplateField(IN_BYTES, 4)))
    datagram = (
        _pack_header(1, 0, 1000, 0, 0)
        + struct.pack("!HH", 310, 4 + 8)
        + b"\x00" * 8
    )
    for use_compiled in (False, True):
        session = V9Session(use_compiled=use_compiled)
        session.decode(encode_v9_template([template], unix_secs=1000))
        assert session.decode(datagram) == []


# ---------------------------------------------------------------------------
# DNS: memoryview + per-message name cache vs the uncached reference.
# ---------------------------------------------------------------------------

# Includes space: FlowDNS must transport malformed names (Section 5), and
# whitespace labels once exposed a cached-vs-uncached normalization split.
_label = st.text(alphabet=string.ascii_uppercase + string.ascii_lowercase + string.digits + "- ",
                 min_size=1, max_size=12).filter(lambda s: s.strip(" .") == s)
_name = st.lists(_label, min_size=1, max_size=4).map(".".join)
_ipv4_text = st.integers(min_value=0, max_value=2**32 - 1).map(
    lambda n: ".".join(str((n >> s) & 0xFF) for s in (24, 16, 8, 0))
)


@st.composite
def _messages(draw):
    qname = draw(_name)
    # CNAME chains that reuse owner names maximize compression pointers —
    # exactly the case the per-message name cache short-circuits.
    chain = [qname] + draw(st.lists(_name, min_size=0, max_size=3))
    answers = []
    for owner, target in zip(chain, chain[1:]):
        answers.append(cname_record(owner, target, draw(st.integers(0, 3600))))
    for _ in range(draw(st.integers(min_value=0, max_value=3))):
        answers.append(a_record(chain[-1], draw(_ipv4_text), draw(st.integers(0, 3600))))
    return DnsMessage(
        header=Header(msg_id=draw(st.integers(0, 0xFFFF))),
        questions=[Question(qname, RRType.A)],
        answers=answers,
    )


@given(msg=_messages())
@settings(max_examples=150, deadline=None)
def test_dns_cached_decode_matches_uncached(msg):
    wire = encode_message(msg)
    cached = decode_message(wire)
    uncached = decode_message(wire, use_name_cache=False)
    assert cached == uncached
    via_memoryview = decode_message(memoryview(wire))
    assert via_memoryview == cached


@given(msg=_messages())
@settings(max_examples=60, deadline=None)
def test_dns_round_trip_survives_cache(msg):
    decoded = decode_message(encode_message(msg))
    assert [q.qname for q in decoded.questions] == [q.qname for q in msg.questions]
    assert decoded.answers == msg.answers


def test_name_cache_consistent_for_shared_suffixes():
    """Pointer into the middle of a cached chain still decodes exactly."""
    # buf: "a.example.com" uncompressed, then "b" + pointer to "example.com"
    first = encode_name("a.example.com")
    buf = bytearray(first)
    second_start = len(buf)
    buf += b"\x01b" + bytes([0xC0 | (2 >> 8), 2])  # pointer to offset 2 ("example.com")
    cache = {}
    name1, off1 = decode_name(bytes(buf), 0, cache)
    name2, off2 = decode_name(bytes(buf), second_start, cache)
    ref1, roff1 = decode_name(bytes(buf), 0)
    ref2, roff2 = decode_name(bytes(buf), second_start)
    assert (name1, off1) == (ref1, roff1)
    assert (name2, off2) == (ref2, roff2)
    assert name2 == "b.example.com"


def test_name_cache_splice_preserves_raw_labels():
    """Regression: a cached suffix must splice *before* normalization.

    The cache once stored normalized suffixes, so a pointer landing on a
    cached name whose first label carried leading whitespace produced a
    different string than the uncached chase (whole-name strip vs
    per-suffix strip).
    """
    buf = bytearray()
    buf += bytes([4]) + b" com" + b"\x00"          # ' com' at offset 0
    second_start = len(buf)
    buf += bytes([1]) + b"b" + bytes([0xC0, 0x00])  # 'b' + pointer to 0
    wire = bytes(buf)
    cache = {}
    primed, _ = decode_name(wire, 0, cache)          # primes cache[0]
    spliced, _ = decode_name(wire, second_start, cache)
    ref, _ = decode_name(wire, second_start)
    assert spliced == ref
    assert primed == decode_name(wire, 0)[0]


def test_interned_names_are_shared_objects():
    """Two messages carrying the same names decode to identical objects."""
    msg = DnsMessage(
        header=Header(msg_id=1),
        questions=[Question("www.shared.example", RRType.A)],
        answers=[a_record("www.shared.example", "198.51.100.7", 60)],
    )
    wire = encode_message(msg)
    first = decode_message(wire)
    second = decode_message(bytes(wire))
    assert first.answers[0].name is second.answers[0].name
