"""Tests for repro.netflow.records."""

import ipaddress

import pytest

from repro.netflow.records import FlowDirection, FlowRecord


class TestFlowRecord:
    def test_coerces_string_addresses(self):
        flow = FlowRecord(ts=1.0, src_ip="1.2.3.4", dst_ip="2001:db8::1")
        assert isinstance(flow.src_ip, ipaddress.IPv4Address)
        assert isinstance(flow.dst_ip, ipaddress.IPv6Address)

    def test_rejects_negative_counters(self):
        with pytest.raises(ValueError):
            FlowRecord(ts=0, src_ip="1.1.1.1", dst_ip="2.2.2.2", packets=-1)
        with pytest.raises(ValueError):
            FlowRecord(ts=0, src_ip="1.1.1.1", dst_ip="2.2.2.2", bytes_=-1)

    def test_rejects_bad_ports(self):
        with pytest.raises(ValueError):
            FlowRecord(ts=0, src_ip="1.1.1.1", dst_ip="2.2.2.2", src_port=70000)

    def test_lookup_ip_source(self):
        flow = FlowRecord(ts=0, src_ip="1.1.1.1", dst_ip="2.2.2.2")
        assert str(flow.lookup_ip(FlowDirection.SOURCE)) == "1.1.1.1"

    def test_lookup_ip_destination(self):
        flow = FlowRecord(ts=0, src_ip="1.1.1.1", dst_ip="2.2.2.2")
        assert str(flow.lookup_ip(FlowDirection.DESTINATION)) == "2.2.2.2"

    def test_lookup_ip_both_raises(self):
        flow = FlowRecord(ts=0, src_ip="1.1.1.1", dst_ip="2.2.2.2")
        with pytest.raises(ValueError):
            flow.lookup_ip(FlowDirection.BOTH)

    @pytest.mark.parametrize(
        "src_port,dst_port,expected",
        [(53, 40000, True), (40000, 53, True), (40000, 853, True), (443, 40000, False)],
    )
    def test_is_dns_port(self, src_port, dst_port, expected):
        flow = FlowRecord(
            ts=0, src_ip="1.1.1.1", dst_ip="2.2.2.2", src_port=src_port, dst_port=dst_port
        )
        assert flow.is_dns_port is expected

    def test_extra_not_part_of_equality(self):
        a = FlowRecord(ts=0, src_ip="1.1.1.1", dst_ip="2.2.2.2", extra={"x": 1})
        b = FlowRecord(ts=0, src_ip="1.1.1.1", dst_ip="2.2.2.2", extra={"y": 2})
        assert a == b
