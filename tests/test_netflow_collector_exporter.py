"""Tests for FlowCollector and FlowExporter working together."""

import pytest

from repro.netflow.collector import FlowCollector, probe_version
from repro.netflow.exporter import FlowExporter
from repro.netflow.records import FlowRecord
from repro.util.errors import ConfigError, ParseError


def _flows(n, v6_every=0):
    out = []
    for i in range(n):
        v6 = v6_every and i % v6_every == 0
        out.append(
            FlowRecord(
                ts=5000.0 + i,
                src_ip=f"2001:db8::{i + 1:x}" if v6 else f"10.2.3.{(i % 250) + 1}",
                dst_ip="2001:db8::aaaa" if v6 else "192.168.9.9",
                src_port=443,
                dst_port=50000 + (i % 1000),
                bytes_=1000 + i,
                packets=1 + i % 5,
            )
        )
    return out


class TestExporterConfig:
    def test_rejects_unknown_version(self):
        with pytest.raises(ConfigError):
            FlowExporter(version=7)

    def test_rejects_bad_batch_size(self):
        with pytest.raises(ConfigError):
            FlowExporter(version=9, batch_size=0)

    def test_v5_batch_cap(self):
        with pytest.raises(ConfigError):
            FlowExporter(version=5, batch_size=31)


@pytest.mark.parametrize("version", [5, 9, 10])
class TestRoundTrip:
    def test_all_flows_recovered(self, version):
        flows = _flows(100)
        exporter = FlowExporter(version=version, batch_size=24 if version != 5 else 30)
        collector = FlowCollector()
        decoded = []
        for datagram in exporter.export(flows):
            decoded.extend(collector.ingest(datagram))
        assert len(decoded) == 100
        assert sum(f.bytes_ for f in decoded) == sum(f.bytes_ for f in flows)

    def test_collector_stats(self, version):
        flows = _flows(10)
        exporter = FlowExporter(version=version, batch_size=10)
        collector = FlowCollector()
        for datagram in exporter.export(flows):
            collector.ingest(datagram)
        assert collector.stats.flows == 10
        assert collector.stats.malformed == 0
        assert (version if version != 10 else 10) in collector.stats.by_version


class TestV9Mixed:
    def test_mixed_v4_v6_batch(self):
        flows = _flows(20, v6_every=4)
        exporter = FlowExporter(version=9, batch_size=20)
        collector = FlowCollector()
        decoded = []
        for datagram in exporter.export(flows):
            decoded.extend(collector.ingest(datagram))
        assert len(decoded) == 20
        assert sum(1 for f in decoded if f.src_ip.version == 6) == 5

    def test_template_refresh(self):
        flows = _flows(200)
        exporter = FlowExporter(version=9, batch_size=10, template_refresh=3)
        datagrams = list(exporter.export(flows))
        # With refresh every 3 data flowsets there are multiple templates.
        collector = FlowCollector()
        total = sum(len(collector.ingest(d)) for d in datagrams)
        assert total == 200


class TestCollectorRobustness:
    def test_garbage_counted_not_raised(self):
        collector = FlowCollector()
        assert collector.ingest(b"\x00") == []
        assert collector.ingest(b"\xff" * 40) == []
        assert collector.stats.malformed + collector.stats.unknown_version == 2

    def test_unknown_version_counted(self):
        collector = FlowCollector()
        collector.ingest(b"\x00\x07" + b"\x00" * 30)
        assert collector.stats.unknown_version == 1

    def test_truncated_v5_counted_malformed(self):
        flows = _flows(2)
        wire = FlowExporter(version=5, batch_size=2)
        datagram = next(iter(wire.export(flows)))
        collector = FlowCollector()
        assert collector.ingest(datagram[:30]) == []
        assert collector.stats.malformed == 1

    def test_probe_version_raises_parse_error_not_struct_error(self):
        """Regression: sub-2-byte datagrams must raise the codec's own error."""
        for short in (b"", b"\x05"):
            with pytest.raises(ParseError):
                probe_version(short)

    def test_short_datagram_counted_malformed(self):
        collector = FlowCollector()
        assert collector.ingest(b"") == []
        assert collector.ingest(b"\x09") == []
        assert collector.stats.malformed == 2
        assert collector.stats.datagrams == 0

    def test_pipeline_survives_interleaved_garbage(self):
        flows = _flows(50)
        exporter = FlowExporter(version=9, batch_size=25)
        collector = FlowCollector()
        decoded = []
        for datagram in exporter.export(flows):
            decoded.extend(collector.ingest(datagram))
            collector.ingest(b"\xde\xad\xbe\xef")
        assert len(decoded) == 50
