"""Property-based tests: the radix trie versus a brute-force LPM oracle."""

import ipaddress

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bgp.prefix_trie import PrefixTrie

_prefix_v4 = st.tuples(
    st.integers(min_value=0, max_value=2**32 - 1),
    st.integers(min_value=0, max_value=32),
).map(lambda t: ipaddress.ip_network((t[0], t[1]), strict=False))

_address_v4 = st.integers(min_value=0, max_value=2**32 - 1).map(ipaddress.IPv4Address)

_prefix_v6 = st.tuples(
    st.integers(min_value=0, max_value=2**128 - 1),
    st.integers(min_value=0, max_value=64),
).map(lambda t: ipaddress.ip_network((t[0], t[1]), strict=False))

_address_v6 = st.integers(min_value=0, max_value=2**128 - 1).map(ipaddress.IPv6Address)


def _oracle(prefixes, address):
    """Brute-force longest-prefix match."""
    best = None
    best_len = -1
    for net, value in prefixes.items():
        if address in net and net.prefixlen > best_len:
            best = value
            best_len = net.prefixlen
    return best


@given(
    st.dictionaries(_prefix_v4, st.integers(), min_size=0, max_size=25),
    st.lists(_address_v4, min_size=1, max_size=10),
)
@settings(max_examples=120, deadline=None)
def test_trie_matches_oracle_v4(prefixes, addresses):
    trie = PrefixTrie()
    for net, value in prefixes.items():
        trie.insert(net, value)
    for address in addresses:
        assert trie.lookup(address) == _oracle(prefixes, address)


@given(
    st.dictionaries(_prefix_v6, st.integers(), min_size=0, max_size=15),
    st.lists(_address_v6, min_size=1, max_size=8),
)
@settings(max_examples=60, deadline=None)
def test_trie_matches_oracle_v6(prefixes, addresses):
    trie = PrefixTrie()
    for net, value in prefixes.items():
        trie.insert(net, value)
    for address in addresses:
        assert trie.lookup(address) == _oracle(prefixes, address)


@given(st.dictionaries(_prefix_v4, st.integers(), min_size=1, max_size=25))
@settings(max_examples=60, deadline=None)
def test_insert_then_remove_restores_empty_lookup(prefixes):
    trie = PrefixTrie()
    for net, value in prefixes.items():
        trie.insert(net, value)
    assert len(trie) == len(prefixes)
    for net in prefixes:
        assert trie.remove(net)
    assert len(trie) == 0
    for net in prefixes:
        assert trie.lookup(net.network_address) is None


@given(st.dictionaries(_prefix_v4, st.integers(), min_size=0, max_size=25))
@settings(max_examples=60, deadline=None)
def test_items_round_trip(prefixes):
    trie = PrefixTrie()
    for net, value in prefixes.items():
        trie.insert(net, value)
    listed = {ipaddress.ip_network(p): v for p, v in trie.items()}
    assert listed == dict(prefixes)
