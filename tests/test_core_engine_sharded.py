"""Tests for the multiprocessing ShardedEngine, including report parity
with the ThreadedEngine on identical input."""

import io

import pytest

from engine_gates import gated_flows

from repro.core.config import FlowDNSConfig
from repro.core.engine import ThreadedEngine
from repro.core.sharded import ShardedEngine
from repro.core.variants import ENGINE_VARIANTS, engine_for
from repro.core.writer import parse_result_line
from repro.dns.rr import RRType, a_record, cname_record
from repro.dns.stream import DnsRecord
from repro.dns.wire import DnsMessage, Question, encode_message
from repro.netflow.exporter import FlowExporter
from repro.netflow.records import FlowDirection, FlowRecord
from repro.util.errors import ConfigError


def _dns_records():
    records = [
        DnsRecord(float(i % 40), f"svc{i % 60}.example", RRType.A, 300,
                  f"10.0.{(i % 60) // 30}.{(i % 60) % 30 + 1}")
        for i in range(600)
    ]
    records.append(DnsRecord(1.0, "svc0.example", RRType.CNAME, 600, "edge.cdn.net"))
    records.append(DnsRecord(1.0, "edge.cdn.net", RRType.A, 60, "10.9.9.9"))
    return records


def _flows(matched=900, unmatched=100):
    flows = [
        FlowRecord(ts=float(i % 40),
                   src_ip=f"10.0.{(i % 60) // 30}.{(i % 60) % 30 + 1}",
                   dst_ip="100.64.0.1", bytes_=100 + i % 13)
        for i in range(matched)
    ]
    flows += [
        FlowRecord(ts=float(i % 40), src_ip="172.16.0.9",
                   dst_ip="100.64.0.2", bytes_=37)
        for i in range(unmatched)
    ]
    flows.append(FlowRecord(ts=30.0, src_ip="10.9.9.9", dst_ip="100.64.0.3", bytes_=5))
    return flows


class TestShardedEngine:
    def test_merged_report_matches_threaded(self):
        dns, flows = _dns_records(), _flows()
        engine = ThreadedEngine(FlowDNSConfig())
        threaded = engine.run([list(dns)], [gated_flows(engine, flows)])
        sharded = ShardedEngine(
            FlowDNSConfig(engine_batch_size=128), num_shards=3
        ).run([list(dns)], [list(flows)], dns_first=True)
        assert sharded.matched_flows == threaded.matched_flows
        assert sharded.flow_records == threaded.flow_records
        assert sharded.dns_records == threaded.dns_records
        assert sharded.total_bytes == threaded.total_bytes
        assert sharded.correlated_bytes == threaded.correlated_bytes
        assert sharded.chain_lengths == threaded.chain_lengths
        assert sharded.overwrites == threaded.overwrites
        assert sharded.variant_name == "sharded"

    def test_rows_written_to_sink(self):
        dns, flows = _dns_records(), _flows(matched=50, unmatched=10)
        sink = io.StringIO()
        report = ShardedEngine(
            FlowDNSConfig(engine_batch_size=32), sink=sink, num_shards=2
        ).run([dns], [flows], dns_first=True)
        rows = [parse_result_line(line) for line in sink.getvalue().splitlines()]
        rows = [r for r in rows if r]
        assert len(rows) == len(flows) == report.flow_records
        services = {r["service"] for r in rows if r["service"]}
        assert "svc1.example" in services

    def test_single_shard(self):
        dns, flows = _dns_records(), _flows(matched=40, unmatched=5)
        report = ShardedEngine(FlowDNSConfig(), num_shards=1).run(
            [dns], [flows], dns_first=True
        )
        assert report.flow_records == len(flows)
        assert report.matched_flows == 41

    def test_direction_both_broadcasts_addresses(self):
        dns = [
            DnsRecord(1.0, "dst.example", RRType.A, 300, "10.7.7.7"),
            # Same IP, new name: one overwrite, even though the broadcast
            # replicates the records into every shard.
            DnsRecord(2.0, "other.example", RRType.A, 300, "10.7.7.7"),
        ]
        flows = [
            FlowRecord(ts=3.0, src_ip="172.16.0.1", dst_ip="10.7.7.7", bytes_=50),
            FlowRecord(ts=3.0, src_ip="172.16.0.2", dst_ip="172.16.0.3", bytes_=10),
        ]
        config = FlowDNSConfig(direction=FlowDirection.BOTH)
        report = ShardedEngine(config, num_shards=3).run(
            [dns], [flows], dns_first=True
        )
        assert report.matched_flows == 1
        assert report.overwrites == 1

    def test_wire_and_datagram_inputs(self):
        msg = DnsMessage()
        msg.questions.append(Question("wire.example", RRType.A))
        msg.answers.append(cname_record("wire.example", "e.cdn.net", 300))
        msg.answers.append(a_record("e.cdn.net", "10.3.3.3", 60))
        wire = encode_message(msg)
        flows = [FlowRecord(ts=10.0, src_ip="10.3.3.3", dst_ip="100.64.0.1",
                            bytes_=500)]
        datagrams = list(FlowExporter(version=9, batch_size=10).export(flows))
        report = ShardedEngine(FlowDNSConfig(), num_shards=2).run(
            [[(1.0, wire)]], [datagrams], dns_first=True
        )
        assert report.dns_records == 2
        assert report.matched_flows == 1
        assert report.chain_lengths.get(2) == 1

    def test_empty_run_terminates(self):
        report = ShardedEngine(FlowDNSConfig(), num_shards=2).run([[]], [[]])
        assert report.flow_records == 0
        assert report.dns_records == 0

    def test_invalid_shard_count(self):
        with pytest.raises(ConfigError):
            ShardedEngine(FlowDNSConfig(), num_shards=0)

    def test_dead_shard_raises_instead_of_hanging(self):
        """A shard process killed mid-run must surface as a RuntimeError
        (synthetic report from the drain loop), not a parent hang."""
        import multiprocessing as mp
        import threading
        import time

        dns = _dns_records()
        flows = [
            FlowRecord(ts=1.0, src_ip=f"10.0.0.{i % 30 + 1}",
                       dst_ip="100.64.0.1", bytes_=1)
            for i in range(60000)
        ]
        engine = ShardedEngine(
            FlowDNSConfig(engine_batch_size=32), num_shards=2
        )

        def killer():
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                children = mp.active_children()
                if children:
                    children[0].terminate()
                    return
                time.sleep(0.005)

        threading.Thread(target=killer, daemon=True).start()
        with pytest.raises(RuntimeError, match="shard"):
            engine.run([dns], [iter(flows)], dns_first=True)


class TestEngineRegistry:
    def test_registry_names(self):
        assert set(ENGINE_VARIANTS) == {"simulation", "threaded", "sharded", "async"}

    def test_engine_for_instantiates(self):
        from repro.core.async_engine import AsyncEngine
        from repro.core.simulation import SimulationEngine

        assert isinstance(engine_for("simulation"), SimulationEngine)
        assert isinstance(engine_for("threaded"), ThreadedEngine)
        assert isinstance(engine_for("async"), AsyncEngine)
        sharded = engine_for("sharded", num_shards=2)
        assert isinstance(sharded, ShardedEngine)
        assert sharded.num_shards == 2

    def test_engine_for_unknown(self):
        with pytest.raises(ValueError):
            engine_for("quantum")
