"""Columnar decode→correlate throughput vs the per-record object path.

PR 3's acceptance gate: the columnar flow path (``decode_batch_columns``
→ ``correlate_batch_columns``, no ``FlowRecord``/``ipaddress``/
``CorrelationResult`` objects anywhere) must run the same datagram
corpus at ≥2× the object reference path (``decode`` →
``correlate_batch``). Both paths use the compiled template decoders, so
the ratio isolates exactly what this PR removes: per-record object
materialisation and the re-derivation of lookup text.

The corpus mirrors the paper's pipeline: one learned v9 template, many
datagrams, flows drawn from a CDN-style repeating address pool, a DNS
map pre-filled so most flows match.

The prefix-trie micro-bench (Section 5's IP→origin-AS correlation) is
recorded alongside, gate-free: absolute trie walk rates on a 1-CPU
shared runner are noise, the number is trajectory data.
"""

import time

from repro.bgp.prefix_trie import PrefixTrie
from repro.core.config import FlowDNSConfig
from repro.core.fillup import FillUpProcessor
from repro.core.lookup import LookUpProcessor
from repro.core.storage_adapter import DnsStorage
from repro.dns.rr import RRType
from repro.dns.stream import DnsRecord
from repro.netflow.records import FlowBatch, FlowRecord
from repro.netflow.v9 import (
    STANDARD_V4_TEMPLATE,
    V9Session,
    encode_v9_data,
    encode_v9_template,
)
from repro.util.benchio import record_bench

N_DATAGRAMS = 150
FLOWS_PER_DATAGRAM = 24
N_POOL_IPS = 96  # distinct source addresses cycling through the corpus

#: The gate ratio ISSUE 3 demands.
MIN_SPEEDUP = 2.0


def _timed(fn, repeats=5):
    """Best-of-N wall time — the same anti-flake scheme the other gates use."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _corpus():
    template = encode_v9_template([STANDARD_V4_TEMPLATE], unix_secs=1000)
    datagrams = []
    for seq in range(N_DATAGRAMS):
        flows = [
            FlowRecord(
                ts=1000.0 + seq,
                src_ip=f"10.0.{ip_index // 250}.{ip_index % 250 + 1}",
                dst_ip="100.64.0.1",
                src_port=443,
                dst_port=50000 + seq,
                protocol=6,
                packets=10,
                bytes_=1400 + i,
            )
            for i in range(FLOWS_PER_DATAGRAM)
            for ip_index in ((seq * FLOWS_PER_DATAGRAM + i) % N_POOL_IPS,)
        ]
        datagrams.append(
            encode_v9_data(STANDARD_V4_TEMPLATE, flows, unix_secs=1000, sequence=seq)
        )
    return template, datagrams


def _filled_storage():
    storage = DnsStorage(FlowDNSConfig())
    fillup = FillUpProcessor(storage)
    fillup.process_batch(
        [
            DnsRecord(999.0, f"svc{i}.example", RRType.A, 3600,
                      f"10.0.{i // 250}.{i % 250 + 1}")
            for i in range(N_POOL_IPS)
        ]
    )
    return storage


def test_columnar_beats_object_path():
    """Gate: columnar decode→correlate ≥2× the object path, same corpus."""
    template, datagrams = _corpus()
    storage = _filled_storage()
    config = FlowDNSConfig()
    expected = N_DATAGRAMS * FLOWS_PER_DATAGRAM

    def object_path():
        session = V9Session()
        session.decode(template)
        flows = []
        for datagram in datagrams:
            flows.extend(session.decode(datagram))
        processor = LookUpProcessor(storage, config)
        results = processor.correlate_batch(flows)
        assert len(results) == expected
        return processor.stats.matched

    def columnar_path():
        session = V9Session()
        session.decode(template)
        batch = FlowBatch()
        for datagram in datagrams:
            batch.extend(session.decode_batch_columns(datagram))
        processor = LookUpProcessor(storage, config)
        correlated = processor.correlate_batch_columns(batch)
        assert len(correlated) == expected
        return processor.stats.matched

    # Correctness first: both paths must correlate every flow identically
    # (this also serves as the warmup pass for both).
    assert object_path() == columnar_path() == expected

    # Interleaved best-of-7 pairs rather than two separate best-of-N
    # blocks: a machine-wide noise burst (CI neighbour, GC, page cache)
    # then hits adjacent samples of *both* paths instead of deflating
    # only one side of the ratio — this gate flaked once on a 1-CPU
    # container when the columnar block alone caught a spike.
    t_object = t_columnar = float("inf")
    for _ in range(7):
        start = time.perf_counter()
        object_path()
        t_object = min(t_object, time.perf_counter() - start)
        start = time.perf_counter()
        columnar_path()
        t_columnar = min(t_columnar, time.perf_counter() - start)
    ratio = t_object / t_columnar
    flows_per_sec = expected / t_columnar
    record_bench("columnar_speedup", round(ratio, 2))
    record_bench("columnar_flows_per_sec", round(flows_per_sec))
    record_bench("object_path_flows_per_sec", round(expected / t_object))
    print(f"\ncolumnar: object {t_object * 1e3:.1f} ms, columnar "
          f"{t_columnar * 1e3:.1f} ms, {ratio:.1f}x, {flows_per_sec:,.0f} flows/s")
    assert ratio >= MIN_SPEEDUP, (
        f"columnar decode→correlate only {ratio:.2f}x the object path "
        f"({t_object:.4f}s vs {t_columnar:.4f}s)"
    )


def test_prefix_trie_lookup_rate_reported():
    """Report (not gate) trie lookup rates with and without the memo.

    Section 5 correlates FlowDNS output with BGP origin-AS data at flow
    rate; the integer-shift walk plus ``lookup_many``'s bounded memo are
    what keep that viable. Recorded only: absolute rates and even the
    memo ratio depend on pool size vs corpus length, and no product
    decision hangs on a threshold here.
    """
    trie = PrefixTrie()
    for i in range(256):
        trie.insert(f"10.{i}.0.0/16", 64500 + i)
        trie.insert(f"10.{i}.128.0/17", 65000 + i)
    addresses = [f"10.{i % 256}.{(i * 7) % 200}.{i % 250 + 1}" for i in range(200)]
    corpus = addresses * 40  # flow streams repeat hot addresses

    expected = [trie.lookup(a) for a in addresses] * 40

    def per_address():
        return [trie.lookup(a) for a in corpus]

    def batched():
        return trie.lookup_many(corpus)

    assert per_address() == batched() == expected
    t_single = _timed(per_address)
    t_batch = _timed(batched)
    record_bench("prefix_trie_lookups_per_sec", round(len(corpus) / t_single))
    record_bench("prefix_trie_lookup_many_per_sec", round(len(corpus) / t_batch))
    record_bench("prefix_trie_memo_speedup", round(t_single / t_batch, 2))
    print(f"\ntrie: {len(corpus) / t_single:,.0f} walks/s, "
          f"{len(corpus) / t_batch:,.0f} memoised/s "
          f"({t_single / t_batch:.1f}x)")
