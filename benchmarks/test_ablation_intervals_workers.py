"""Design-space ablations: clear-up interval and worker scaling.

The paper fixes AClearUpInterval=3600 from the TTL ECDF and notes the
split/parallelism trade-off in its lessons learned. These benches sweep
both choices:

* clear-up interval — shorter intervals save memory but cost
  correlation (more records expire before their flows arrive); the
  deployed 3600 s sits at the knee;
* LookUp worker count — the threaded engine's throughput on a fixed
  batch, documenting where Python's GIL flattens the curve.
"""


import pytest

from conftest import print_rows

from repro.analysis import run_variant
from repro.core.config import FlowDNSConfig
from repro.core.engine import ThreadedEngine, gated_flow_source
from repro.core.variants import Variant
from repro.dns.rr import RRType
from repro.dns.stream import DnsRecord
from repro.netflow.records import FlowRecord
from repro.workloads.isp import large_isp

_INTERVAL_RESULTS = {}


@pytest.mark.parametrize("interval", [900.0, 1800.0, 3600.0, 7200.0])
def test_ablation_clear_up_interval(benchmark, interval):
    def run():
        workload = large_isp(seed=37, duration=6 * 3600.0, n_benign=600)
        config = FlowDNSConfig(
            a_clear_up_interval=interval, c_clear_up_interval=2 * interval
        )
        return run_variant(workload, Variant.MAIN, base_config=config).report

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    _INTERVAL_RESULTS[interval] = (
        report.correlation_rate,
        report.mean_memory_gb,
    )
    assert report.correlation_rate > 0.6
    if len(_INTERVAL_RESULTS) == 4:
        rows = [
            f"A-interval={k:6.0f}s  correlation={v[0]:.4f}  mean memory={v[1]:5.1f} GiB"
            for k, v in sorted(_INTERVAL_RESULTS.items())
        ]
        print_rows("Ablation: clear-up interval sweep", rows)
        rates = [v[0] for _k, v in sorted(_INTERVAL_RESULTS.items())]
        mems = [v[1] for _k, v in sorted(_INTERVAL_RESULTS.items())]
        # Longer retention never hurts correlation; the extremes order on
        # memory too (mid-points wobble with sampling phase vs rotation).
        assert rates == sorted(rates)
        assert mems[-1] > mems[0]
        # The deployed 3600 captures nearly all of 7200's correlation.
        assert rates[3] - rates[2] < 0.01


@pytest.mark.parametrize("workers", [1, 2, 4])
def test_threaded_worker_scaling(benchmark, workers):
    dns = [
        DnsRecord(float(i), f"s{i % 300}.example", RRType.A, 300,
                  f"10.{(i % 300) // 250}.{(i % 250) + 1}.9")
        for i in range(1500)
    ]
    flows = [
        FlowRecord(ts=float(i % 1000), src_ip=f"10.{(i % 300) // 250}.{(i % 250) + 1}.9",
                   dst_ip="100.64.0.1", bytes_=100)
        for i in range(8000)
    ]

    def run():
        config = FlowDNSConfig(
            lookup_workers_per_stream=workers, fillup_workers_per_stream=1
        )
        engine = ThreadedEngine(config)
        # Flows held until FillUp has drained the DNS stream, so matched
        # counts are deterministic at any lookup speed.
        gated = gated_flow_source(engine, flows, timeout=30.0, poll=0.002)
        return engine.run([list(dns)], [gated])

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    assert report.flow_records == len(flows)
    assert report.matched_flows == len(flows)
