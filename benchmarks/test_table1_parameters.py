"""Table 1: FlowDNS parameters and storage names.

Asserts that the reproduction's defaults are exactly the deployed values
the paper documents, and that each named storage exists with the
described semantics.
"""

from conftest import print_rows

from repro.core.config import FlowDNSConfig
from repro.core.storage_adapter import DnsStorage
from repro.storage.rotating import Tier


def _check_table1():
    config = FlowDNSConfig()
    storage = DnsStorage(config)
    rows = [
        f"AClearUpInterval       paper=3600   measured={config.a_clear_up_interval:.0f}",
        f"CClearUpInterval       paper=7200   measured={config.c_clear_up_interval:.0f}",
        f"NUM_SPLIT              paper=10     measured={config.num_split}",
        f"CNAME loop limit       paper=6      measured={config.cname_loop_limit}",
    ]
    # Table 1's six storages: IP-NAME / NAME-CNAME × Active/Inactive/Long.
    counts = storage.entry_counts()
    for bank in ("ip_name", "name_cname"):
        for tier in Tier:
            assert tier.value in counts[bank]
    return config, rows


def test_table1_parameters(benchmark):
    config, rows = benchmark.pedantic(_check_table1, rounds=1, iterations=1)
    print_rows("Table 1: parameters", rows)
    assert config.a_clear_up_interval == 3600.0
    assert config.c_clear_up_interval == 7200.0
    assert config.num_split == 10
    assert config.cname_loop_limit == 6
