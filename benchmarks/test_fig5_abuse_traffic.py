"""Figure 5 + Section 5: abuse-category traffic and invalid domain names.

Paper anchors:
* of ~1M sampled names, 612 are DBL-listed: 512 spam, 41 botnet C&C,
  34 abused redirectors, 11 malware, 3 phishing;
* 666k of 39M names (~1.7 %) violate RFC 1035; '_' offends in 87 %;
* malformed + spam domains carry ~0.5 % of daily bytes;
* per category, few domains carry most of the bytes (cumulative curves);
* 2.7 % of receiving clients reply, to 23.6 % of malformed domains,
  mostly on non-web ports.
"""

from conftest import print_rows

from repro.analysis import ResultRecorder, comparison_row, run_variant
from repro.analysis.invalid_domains import analyze_invalid_domains
from repro.analysis.spamdbl import DBL_CATEGORIES, DomainBlockList, analyze_abuse_traffic
from repro.core.variants import Variant
from repro.workloads.isp import large_isp
from repro.workloads.malicious import PAPER_DBL_COUNTS_PER_MILLION


def test_fig5_category_curves(benchmark, main_day):
    def analyze():
        workload = main_day["workload"]
        dbl = DomainBlockList.from_categories(workload.universe.abuse.by_category)
        return analyze_abuse_traffic(main_day["service_bytes"].bytes_by_service, dbl)

    report = benchmark.pedantic(analyze, rounds=1, iterations=1)
    counts = report.category_counts()
    universe_size = len(main_day["workload"].universe.services)
    rows = []
    for category in DBL_CATEGORIES:
        paper_per_m = PAPER_DBL_COUNTS_PER_MILLION[category]
        rows.append(
            f"{category:<18s} listed-with-traffic={counts.get(category, 0):4d} "
            f"(paper {paper_per_m}/1M names; universe here {universe_size} services)"
        )
    rows.append(comparison_row("abuse byte share", 0.005, report.abuse_byte_share()))
    print_rows("Figure 5: DBL categories over one simulated day", rows)

    # Every category must observe traffic, and spam must dominate by count.
    for category in DBL_CATEGORIES:
        assert counts.get(category, 0) > 0, category
    assert counts["spam"] == max(counts.values())
    # Heavy-tail shape: in each category the top 20% of domains carry
    # well over their proportional byte share (Figure 5's "only a
    # limited number of domain names account for a large fraction").
    for category in DBL_CATEGORIES:
        curve = report.cumulative_curve(category)
        top = max(1, len(curve) // 5)
        proportional = top / len(curve)
        assert curve[top - 1][1] > 1.4 * proportional, category
    # Abuse byte share near the paper's 0.5 % (with spam ∪ malformed below).
    assert 0.001 < report.abuse_byte_share() < 0.012


def test_section5_invalid_domains(benchmark):
    def run():
        workload = large_isp(seed=23, duration=6 * 3600.0, n_benign=2000)
        recorder = ResultRecorder()
        run_variant(workload, Variant.MAIN, on_result=recorder)
        return analyze_invalid_domains(recorder.results)

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        comparison_row("invalid / seen names", 666_000 / 39_000_000, report.invalid_name_fraction),
        comparison_row("underscore share of violators", 0.87, report.underscore_share),
        comparison_row("malformed byte share", 0.005, report.invalid_byte_share),
        comparison_row("replying client fraction", 0.027, report.replying_client_fraction),
        comparison_row("replied domain fraction", 0.236, report.replied_domain_fraction),
        f"reply ports: {dict(report.reply_ports)}",
    ]
    print_rows("Section 5: invalid domain names", rows)

    assert report.invalid_names > 0
    # Several percent of *names*, sub-percent of *bytes* — the paper's shape.
    assert 0.001 <= report.invalid_name_fraction <= 0.2
    assert 0.0005 <= report.invalid_byte_share <= 0.02
    assert 0.75 <= report.underscore_share <= 0.95
    # Bi-directional traffic exists, on non-web ports.
    assert report.replying_clients
    assert set(report.reply_ports) <= {"openvpn", "kerberos"}
    # The curve: almost all malformed bytes come from few domains.
    curve = report.cumulative_curve()
    top = max(1, len(curve) // 5)
    assert curve[top - 1][1] > 0.5
