"""Figure 3: CPU and memory usage for the benchmark variants over a day.

Paper anchors:
* No Clear-Up's memory "grows steadily over the day and can easily hit
  the memory limit";
* No Rotation "uses much less memory compared to other benchmarks";
* No Long Hashmaps "save neither a significant amount of memory nor CPU";
* No Split "neither improves nor degrades the memory usage but decreases
  the CPU usage significantly".
"""

from conftest import print_rows

from repro.core.variants import Variant


def test_fig3_memory_orderings(benchmark, variant_runs):
    reports = benchmark.pedantic(lambda: variant_runs, rounds=1, iterations=1)
    final_mem = {v: r.samples[-1].memory_bytes / 2**30 for v, r in reports.items()}
    mean_mem = {v: r.mean_memory_gb for v, r in reports.items()}
    rows = [
        f"{v.value:<14s} final={final_mem[v]:6.1f} GiB  mean={mean_mem[v]:6.1f} GiB"
        for v in reports
    ]
    print_rows("Figure 3b: memory by variant (half simulated day)", rows)

    # No Clear-Up grows beyond Main and keeps growing.
    assert final_mem[Variant.NO_CLEAR_UP] > 1.15 * final_mem[Variant.MAIN]
    ncu = reports[Variant.NO_CLEAR_UP].samples
    first_half = sum(s.memory_bytes for s in ncu[: len(ncu) // 2]) / (len(ncu) // 2)
    second_half = sum(s.memory_bytes for s in ncu[len(ncu) // 2 :]) / (len(ncu) - len(ncu) // 2)
    assert second_half > first_half  # steady growth

    # No Rotation uses the least memory of all variants.
    assert final_mem[Variant.NO_ROTATION] == min(final_mem.values())

    # No Long ≈ Main (no significant memory saving).
    assert abs(final_mem[Variant.NO_LONG] - final_mem[Variant.MAIN]) < 0.2 * final_mem[Variant.MAIN]

    # No Split ≈ Main on memory.
    assert abs(final_mem[Variant.NO_SPLIT] - final_mem[Variant.MAIN]) < 0.05 * final_mem[Variant.MAIN]


def test_fig3_cpu_orderings(benchmark, variant_runs):
    reports = benchmark.pedantic(lambda: variant_runs, rounds=1, iterations=1)
    cpu = {v: r.mean_cpu_percent for v, r in reports.items()}
    rows = [f"{v.value:<14s} mean CPU = {cpu[v]:7.0f} %" for v in reports]
    print_rows("Figure 3a: CPU by variant (half simulated day)", rows)

    # No Split decreases CPU significantly; everything else ≈ Main.
    assert cpu[Variant.NO_SPLIT] < 0.97 * cpu[Variant.MAIN]
    for variant in (Variant.NO_CLEAR_UP, Variant.NO_ROTATION, Variant.NO_LONG):
        assert abs(cpu[variant] - cpu[Variant.MAIN]) < 0.05 * cpu[Variant.MAIN]
