"""Codec throughput: compiled template decode vs the per-field reference.

PR 2's acceptance gate: the template-specialized compiled decoders
(``repro.netflow.compiled``) must decode the same v9/IPFIX packet corpus
at ≥3× the per-field reference decoders (``use_compiled=False`` keeps
the reference callable, so the gate measures a real ratio). The corpus
mimics the paper's collector input: many datagrams against one learned
template, flows drawn from a repeating CDN-style address pool.

DNS decode throughput is reported alongside (message decode with the
per-message name cache vs without) but only the NetFlow ratio is gated —
the name cache's win depends on how compressed the resolver's encoder
output is.
"""

import time

from repro.dns.rr import RRType, a_record, cname_record
from repro.dns.wire import DnsMessage, Header, Question, decode_message, encode_message
from repro.netflow.ipfix import (
    IPFIX_V4_TEMPLATE,
    IpfixSession,
    encode_ipfix_data,
    encode_ipfix_template,
)
from repro.netflow.records import FlowRecord
from repro.netflow.v9 import (
    STANDARD_V4_TEMPLATE,
    V9Session,
    encode_v9_data,
    encode_v9_template,
)
from repro.util.benchio import record_bench

#: Datagrams per corpus and flows per datagram: large enough that one
#: decode pass takes tens of milliseconds, small enough for CI smoke.
N_DATAGRAMS = 120
FLOWS_PER_DATAGRAM = 25

#: The gate ratio ISSUE 2 demands.
MIN_SPEEDUP = 3.0


def _timed(fn, repeats=5):
    """Best-of-N wall time — the same anti-flake scheme the engine gate uses."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _flow_pool():
    return [
        FlowRecord(
            ts=1000.0 + i,
            src_ip=f"10.{i % 4}.{(i // 4) % 16}.{i % 250 + 1}",
            dst_ip="100.64.0.1",
            src_port=443,
            dst_port=50000 + (i % 1000),
            protocol=6,
            packets=10 + i,
            bytes_=1400 + i,
        )
        for i in range(FLOWS_PER_DATAGRAM)
    ]


def _v9_corpus():
    template = encode_v9_template([STANDARD_V4_TEMPLATE], unix_secs=1000)
    flows = _flow_pool()
    data = [
        encode_v9_data(STANDARD_V4_TEMPLATE, flows, unix_secs=1000, sequence=seq)
        for seq in range(N_DATAGRAMS)
    ]
    return template, data


def _ipfix_corpus():
    template = encode_ipfix_template([IPFIX_V4_TEMPLATE], export_secs=1000)
    flows = _flow_pool()
    data = [
        encode_ipfix_data(IPFIX_V4_TEMPLATE, flows, export_secs=1000, sequence=seq)
        for seq in range(N_DATAGRAMS)
    ]
    return template, data


def _decode_corpus(session, template, datagrams):
    session.decode(template)
    total = 0
    for datagram in datagrams:
        total += len(session.decode(datagram))
    return total


def _gate(name, session_factory, template, datagrams):
    reference = session_factory(use_compiled=False)
    compiled = session_factory(use_compiled=True)
    reference.decode(template)
    compiled.decode(template)
    expected = N_DATAGRAMS * FLOWS_PER_DATAGRAM

    # Correctness first: both paths must emit the identical record stream.
    ref_flows = [f for d in datagrams[:3] for f in reference.decode(d)]
    comp_flows = [f for d in datagrams[:3] for f in compiled.decode(d)]
    assert ref_flows == comp_flows
    assert all(a.extra == b.extra for a, b in zip(ref_flows, comp_flows))

    def run_reference():
        assert _decode_corpus(session_factory(use_compiled=False), template, datagrams) == expected

    def run_compiled():
        assert _decode_corpus(session_factory(use_compiled=True), template, datagrams) == expected

    t_ref = _timed(run_reference)
    t_comp = _timed(run_compiled)
    ratio = t_ref / t_comp
    records_per_sec = expected / t_comp
    record_bench(f"{name}_decode_speedup", round(ratio, 2))
    record_bench(f"{name}_compiled_records_per_sec", round(records_per_sec))
    print(f"\n{name}: reference {t_ref * 1e3:.1f} ms, compiled {t_comp * 1e3:.1f} ms, "
          f"{ratio:.1f}x, {records_per_sec:,.0f} rec/s")
    assert ratio >= MIN_SPEEDUP, (
        f"compiled {name} decode only {ratio:.2f}x the per-field reference "
        f"({t_ref:.4f}s vs {t_comp:.4f}s)"
    )


def test_v9_compiled_decode_speedup():
    """Gate: compiled v9 decode ≥3× the per-field reference."""
    template, datagrams = _v9_corpus()
    _gate("v9", V9Session, template, datagrams)


def test_ipfix_compiled_decode_speedup():
    """Gate: compiled IPFIX decode ≥3× the per-field reference."""
    template, datagrams = _ipfix_corpus()
    _gate("ipfix", IpfixSession, template, datagrams)


def test_dns_decode_throughput_reported():
    """Report (not gate) DNS message decode rate with the name cache.

    CDN-style responses — a CNAME chain whose owner names repeat through
    compression pointers — are where the per-message name-offset cache
    pays; the measured messages/s lands in the bench JSON artifact.

    ``dns_name_cache_speedup`` is deliberately record-only and must never
    grow an assertion: on the 1-CPU CI container it measured as low as
    1.1x (the cache's win rides on how compressed the encoder's output
    is, and the margin is inside shared-runner noise), so any gate on it
    would flake. The differential ``run(True) == run(False)`` check is
    the correctness guard; the ratio is trajectory data only.
    """
    msg = DnsMessage(
        header=Header(msg_id=7),
        questions=[Question("www.service.example.com", RRType.A)],
        answers=[
            cname_record("www.service.example.com", "edge.cdn.example.net", 300),
            cname_record("edge.cdn.example.net", "pop3.cdn.example.net", 300),
            a_record("pop3.cdn.example.net", "203.0.113.10", 60),
            a_record("pop3.cdn.example.net", "203.0.113.11", 60),
            a_record("pop3.cdn.example.net", "203.0.113.12", 60),
        ],
    )
    wire = encode_message(msg)
    n = 400

    def run(cached: bool):
        for _ in range(n):
            decoded = decode_message(wire, use_name_cache=cached)
        return decoded

    assert run(True) == run(False)  # differential guard on the corpus itself
    t_cached = _timed(lambda: run(True))
    t_plain = _timed(lambda: run(False))
    record_bench("dns_decode_msgs_per_sec", round(n / t_cached))
    record_bench("dns_name_cache_speedup", round(t_plain / t_cached, 2))
    print(f"\ndns: {n / t_cached:,.0f} msg/s cached vs {n / t_plain:,.0f} msg/s uncached")
