"""Figure 9 / Appendix A.7: domain names per IP address.

Paper anchors: in a 300 s window, 88 % of IPs map to a single name
(hence accuracy is exact for ≥88 % of IPs); 35 % of names map to more
than one IP (which by design does not hurt accuracy); a 1-hour sample
shows similar results.
"""

from conftest import print_rows

from repro.analysis import comparison_row, names_per_ip
from repro.workloads.isp import large_isp


def test_fig9_names_per_ip_300s(benchmark):
    def analyze():
        workload = large_isp(seed=19, duration=2400.0)
        return names_per_ip(workload.dns_records(), window=300.0, t_start=0.0)

    report = benchmark.pedantic(analyze, rounds=1, iterations=1)
    ecdf = report.names_per_ip_ecdf()
    rows = [
        comparison_row("IPs with a single name (300 s)", 0.88, report.single_name_fraction),
        comparison_row("names with >1 IP (300 s)", 0.35, report.multi_ip_name_fraction),
        comparison_row("accuracy lower bound", 0.88, report.expected_accuracy_lower_bound),
        "names/IP ECDF: " + " ".join(f"({x:.0f},{y:.3f})" for x, y in ecdf.points()[:8]),
    ]
    print_rows("Figure 9: names per IP (300 s window)", rows)

    assert 0.82 <= report.single_name_fraction <= 0.95
    assert 0.25 <= report.multi_ip_name_fraction <= 0.48


def test_fig9_one_hour_similar(benchmark):
    """Paper: 'We also did the analysis with a 1-hour sample and observed
    similar results.'"""

    def analyze():
        workload = large_isp(seed=19, duration=2 * 3600.0)
        short = names_per_ip(workload.dns_records(), window=300.0, t_start=0.0)
        long_ = names_per_ip(workload.dns_records(), window=3600.0, t_start=0.0)
        return short, long_

    short, long_ = benchmark.pedantic(analyze, rounds=1, iterations=1)
    rows = [
        comparison_row("single-name IPs, 300 s", 0.88, short.single_name_fraction),
        comparison_row("single-name IPs, 1 h", 0.88, long_.single_name_fraction),
    ]
    print_rows("Appendix A.7: window robustness", rows)
    # Longer windows see more collisions but most IPs stay single-named.
    # (Deviation note: our synthetic pools re-use IPs more than the
    # real Internet does, so the 1-hour figure drifts lower than the
    # paper's "similar results" — recorded in EXPERIMENTS.md.)
    assert long_.single_name_fraction >= 0.45
    assert short.single_name_fraction > long_.single_name_fraction
