"""Live-ingest throughput: the asyncio engine over real loopback sockets.

PR 6 rebuilt the live flow path — bulk ``recv_into`` drains per wakeup,
decode moved off the event loop into the lookup lane's batched
``ingest_columns`` path — so live UDP ingest is gated against the PR 4
baseline (one ``datagram_received`` callback + in-callback decode per
packet): ``async_udp_flows_per_sec`` must be at least
``LIVE_SPEEDUP_FLOOR`` × that recorded baseline.

The same corpus is also decoded+correlated *offline* through the
identical lane machinery, giving an inline columnar reference rate; the
recorded ``live_ingest_gap_ratio`` (columnar ÷ live) tracks how much of
the remaining gap is socket/loop overhead. Since PR 9 the DNS side runs
the columnar fill lane too (``TcpDnsIngest`` hands ``(ts, wire)`` tuples
to ``FillLane``, which batch-decodes them via ``decode_fill_columns``),
so ``async_dns_msgs_per_sec`` measures the columnar path live and the
record-only ``dns_live_gap_ratio`` (offline columnar fill ÷ live rate)
mirrors the flow lane's gap metric. A second benchmark runs the
multi-process SO_REUSEPORT source (``reuseport_udp_flows_per_sec``) —
record-only on small runners, gated at ≥ 0.5× the inline columnar rate
when the machine has the cores to host the workers.
"""

import os
import socket
import threading
import time

from repro.core.async_engine import AsyncEngine, TcpDnsIngest, UdpFlowIngest
from repro.core.config import EngineConfig, FlowDNSConfig
from repro.core.fillup import FillUpProcessor
from repro.core.ingest import ReuseportUdpIngest
from repro.core.lookup import LookUpProcessor
from repro.core.pipeline import FillLane, LookupLane
from repro.core.storage_adapter import DnsStorage
from repro.dns.rr import RRType, a_record
from repro.dns.stream import DnsRecord
from repro.dns.tcp import frame_messages
from repro.dns.wire import DnsMessage, Question, encode_message
from repro.netflow.collector import FlowCollector
from repro.netflow.exporter import FlowExporter
from repro.netflow.records import FlowRecord
from repro.util.benchio import record_bench

N_DNS_MESSAGES = 400
N_FLOWS = 72_000
N_POOL_IPS = 200
FLOWS_PER_DATAGRAM = 24

#: PR 4's recorded async_udp_flows_per_sec on the reference runner (one
#: decode per datagram_received callback, on-loop).
PR4_BASELINE_FLOWS_PER_SEC = 71_000
#: The PR 6 gate: batched socket drains + off-loop decode must clear
#: this multiple of the PR 4 baseline.
LIVE_SPEEDUP_FLOOR = 3.0

#: Minimum fraction of the corpus that must make it through the live
#: sockets for the smoke to count (loopback UDP may shed a little).
MIN_INGEST_FRACTION = 0.8

#: Datagrams per send burst before checking that the decode side keeps
#: up — bounds kernel-buffer occupancy so the bench measures the decode
#: lane, not rmem_max.
SEND_BURST = 512


def _dns_wires():
    wires = []
    for i in range(N_DNS_MESSAGES):
        name = f"svc{i % N_POOL_IPS}.bench.example"
        msg = DnsMessage()
        msg.questions.append(Question(name, RRType.A))
        msg.answers.append(a_record(name, f"10.20.{(i % N_POOL_IPS) // 250}.{i % 250 + 1}", 600))
        wires.append(encode_message(msg))
    return wires


def _dns_records():
    """The same pool as `_dns_wires`, as records (for the offline ref)."""
    return [
        DnsRecord(5.0, f"svc{i % N_POOL_IPS}.bench.example", RRType.A, 600,
                  f"10.20.{(i % N_POOL_IPS) // 250}.{i % 250 + 1}")
        for i in range(N_DNS_MESSAGES)
    ]


def _flow_records():
    return [
        FlowRecord(ts=20.0 + (i % 40), src_ip=f"10.20.0.{i % N_POOL_IPS % 250 + 1}",
                   dst_ip="100.64.0.1", bytes_=120 + i % 31)
        for i in range(N_FLOWS)
    ]


def _flow_datagrams(version=9):
    flows = _flow_records()
    exporter = FlowExporter(version=version, batch_size=FLOWS_PER_DATAGRAM)
    return len(flows), list(exporter.export(flows))


def _wait_progress(value, minimum, timeout=120.0, stall=3.0):
    """Poll ``value()`` until ``minimum``, progress stalls, or timeout.

    Returns ``(final_value, perf_counter_of_last_progress)`` so rates can
    exclude the stall-detection wait itself.
    """
    deadline = time.monotonic() + timeout
    last, last_change = value(), time.monotonic()
    last_progress = time.perf_counter()
    while last < minimum and time.monotonic() < deadline:
        time.sleep(0.02)
        current = value()
        if current != last:
            last, last_change = current, time.monotonic()
            last_progress = time.perf_counter()
        elif time.monotonic() - last_change > stall:
            break
    return value(), last_progress


def _blast(datagrams, address, progress, senders=1):
    """Pour datagrams down loopback as fast as the consumer absorbs them.

    Bursts of SEND_BURST, pausing only while the receive side lags a full
    burst behind — keeps kernel-buffer occupancy bounded without pacing
    the send loop itself.
    """
    socks = [socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
             for _ in range(senders)]
    try:
        for start in range(0, len(datagrams), SEND_BURST):
            for i in range(start, min(start + SEND_BURST, len(datagrams))):
                socks[i % senders].sendto(datagrams[i], address)
            deadline = time.monotonic() + 30.0
            while (progress() < start - SEND_BURST
                   and time.monotonic() < deadline):
                time.sleep(0.002)
    finally:
        for sock in socks:
            sock.close()


def _offline_columnar_rate(datagrams, n_flows, chunk=64):
    """Decode+correlate the same corpus through the same lane machinery,
    no sockets or event loop: the inline columnar reference rate."""
    config = FlowDNSConfig()
    storage = DnsStorage(config)
    fill = FillLane(FillUpProcessor(storage))
    fill.process_records(_dns_records())
    lane = LookupLane(LookUpProcessor(storage, config), FlowCollector())
    t0 = time.perf_counter()
    for start in range(0, len(datagrams), chunk):
        lane.correlate_items(datagrams[start:start + chunk])
    elapsed = time.perf_counter() - t0
    return n_flows / elapsed if elapsed > 0 else 0.0


def _offline_dns_fill_rate(wires, chunk=256):
    """Decode+store the same DNS corpus through the same columnar fill
    lane, no sockets or event loop: the inline reference rate the live
    TCP path is compared against (``dns_live_gap_ratio``)."""
    storage = DnsStorage(FlowDNSConfig())
    lane = FillLane(FillUpProcessor(storage))
    items = [(5.0, wire) for wire in wires]
    t0 = time.perf_counter()
    for start in range(0, len(items), chunk):
        lane.process_items(items[start:start + chunk])
    elapsed = time.perf_counter() - t0
    return len(wires) / elapsed if elapsed > 0 else 0.0


def test_async_live_ingest_throughput(benchmark=None):
    wires = _dns_wires()
    n_flows, datagrams = _flow_datagrams()
    dns_ingest = TcpDnsIngest(clock=lambda: 5.0)
    flow_ingest = UdpFlowIngest()
    engine = AsyncEngine(EngineConfig())
    result = {}
    runner = threading.Thread(
        target=lambda: result.update(
            report=engine.run([dns_ingest], [flow_ingest])
        ),
        daemon=True,
    )
    runner.start()
    dns_addr = dns_ingest.wait_ready()
    flow_addr = flow_ingest.wait_ready()

    # DNS phase: one TCP stream, timed from first byte to last stored.
    stream = frame_messages(wires)
    t0 = time.perf_counter()
    with socket.create_connection(dns_addr, timeout=10.0) as conn:
        conn.sendall(stream)
    dns_seen, t_done = _wait_progress(lambda: engine.dns_records_seen, len(wires))
    dns_elapsed = t_done - t0

    # Flow phase: blast the datagrams down loopback UDP. The receive
    # callback only appends raw datagrams to the buffer; decode happens
    # in the lookup lane, batched — the path under test.
    def received():
        return flow_ingest.ingest_stats.received

    t0 = time.perf_counter()
    _blast(datagrams, flow_addr, progress=received)
    flows_seen, t_done = _wait_progress(lambda: engine.flows_seen, n_flows)
    flow_elapsed = t_done - t0

    engine.request_stop()
    runner.join(timeout=30.0)
    assert not runner.is_alive(), "async engine failed to drain and stop"
    report = result["report"]

    assert report.dns_records == dns_seen
    assert report.flow_records == flows_seen
    assert dns_seen >= MIN_INGEST_FRACTION * len(wires)
    assert flows_seen >= MIN_INGEST_FRACTION * n_flows
    assert report.matched_flows > 0
    # Whatever was shed must be *accounted* (buffer drops), never silent:
    udp_stats = flow_ingest.ingest_stats
    assert udp_stats.received - udp_stats.malformed - udp_stats.dropped >= 0
    # The achieved SO_RCVBUF is surfaced for drop diagnostics.
    assert udp_stats.recv_buffer_bytes > 0

    dns_rate = dns_seen / dns_elapsed if dns_elapsed > 0 else 0.0
    flow_rate = flows_seen / flow_elapsed if flow_elapsed > 0 else 0.0
    columnar_rate = _offline_columnar_rate(datagrams, n_flows)
    gap_ratio = columnar_rate / flow_rate if flow_rate > 0 else float("inf")
    dns_fill_rate = _offline_dns_fill_rate(wires)
    dns_gap_ratio = dns_fill_rate / dns_rate if dns_rate > 0 else float("inf")
    record_bench("async_dns_msgs_per_sec", round(dns_rate))
    record_bench("async_udp_flows_per_sec", round(flow_rate))
    record_bench("async_ingest_loss_rate", round(report.overall_loss_rate, 6))
    record_bench("live_ingest_gap_ratio", round(gap_ratio, 3))
    record_bench("dns_live_gap_ratio", round(dns_gap_ratio, 3))
    print(f"\nasync live ingest: dns={dns_rate:,.0f} rec/s "
          f"(columnar fill offline {dns_fill_rate:,.0f} msg/s, "
          f"gap {dns_gap_ratio:.2f}x) "
          f"udp flows={flow_rate:,.0f} rec/s "
          f"(columnar offline {columnar_rate:,.0f} rec/s, "
          f"gap {gap_ratio:.2f}x, ingested {flows_seen}/{n_flows} flows, "
          f"loss={report.overall_loss_rate:.3%})")
    assert flow_rate >= LIVE_SPEEDUP_FLOOR * PR4_BASELINE_FLOWS_PER_SEC, (
        f"live UDP ingest {flow_rate:,.0f} flows/s is below "
        f"{LIVE_SPEEDUP_FLOOR}x the PR 4 baseline "
        f"({PR4_BASELINE_FLOWS_PER_SEC:,} flows/s)"
    )


def test_reuseport_ingest_throughput(benchmark=None):
    """Multi-process socket sharding: N reuseport workers feed the async
    engine decoded FlowBatch items over the flat-column IPC lane.

    v5 datagrams (stateless — correct under any kernel flow-hash spread)
    from several sender sockets. Record-only on small runners; on >= 4
    cores the sharded path must clear half the inline columnar rate.
    """
    if not hasattr(socket, "SO_REUSEPORT"):
        import pytest

        pytest.skip("platform has no SO_REUSEPORT")
    cores = os.cpu_count() or 1
    workers = 2 if cores < 4 else 4
    n_flows, datagrams = _flow_datagrams(version=5)
    ingest = ReuseportUdpIngest(workers=workers, batch_rows=2048,
                                poll_interval=0.02)
    engine = AsyncEngine(EngineConfig())
    result = {}
    runner = threading.Thread(
        target=lambda: result.update(report=engine.run([], [ingest])),
        daemon=True,
    )
    runner.start()
    address = ingest.wait_ready(15.0)

    def received():
        return ingest.ingest_stats.received

    t0 = time.perf_counter()
    _blast(datagrams, address, progress=received, senders=8)
    flows_seen, t_done = _wait_progress(lambda: engine.flows_seen, n_flows)
    elapsed = t_done - t0

    engine.request_stop()
    runner.join(timeout=60.0)
    assert not runner.is_alive(), "async engine failed to drain and stop"
    report = result["report"]

    assert flows_seen >= MIN_INGEST_FRACTION * n_flows
    assert report.flow_records == flows_seen
    stats = ingest.ingest_stats
    assert stats.received - stats.malformed - stats.dropped >= 0

    rate = flows_seen / elapsed if elapsed > 0 else 0.0
    columnar_rate = _offline_columnar_rate(datagrams, n_flows)
    record_bench("reuseport_udp_flows_per_sec", round(rate))
    record_bench("reuseport_ingest_workers", workers)
    print(f"\nreuseport ingest ({workers} workers): {rate:,.0f} flows/s "
          f"(columnar offline {columnar_rate:,.0f} rec/s, "
          f"ingested {flows_seen}/{n_flows})")
    if cores >= 4:
        assert rate >= 0.5 * columnar_rate, (
            f"sharded-socket ingest {rate:,.0f} flows/s is below half the "
            f"inline columnar rate ({columnar_rate:,.0f} rec/s) on a "
            f"{cores}-core machine"
        )
    # On smaller machines the number is recorded for the trajectory but
    # not gated: the workers and the event loop share too few cores for
    # a wall-clock ratio to be stable.
