"""Live-ingest throughput: the asyncio engine over real loopback sockets.

PR 4's recorded benchmark: NetFlow v9 export datagrams over UDP plus
length-framed DNS messages over TCP, ingested end-to-end by
:class:`AsyncEngine` — socket receive, columnar decode
(``ingest_columns``), correlate, TSV write — on loopback. The numbers
(``async_udp_flows_per_sec``, ``async_dns_msgs_per_sec``) land in the
per-PR bench JSON as trajectory data.

No hard ratio gate: loopback UDP on a 1-CPU shared runner can shed a
datagram under scheduler hiccups, so the assertion is a smoke bound
(≥80 % of the corpus ingested and correlated, loss accounted) rather
than a wall-clock ratio that would flake.
"""

import socket
import threading
import time

from repro.core.async_engine import AsyncEngine, TcpDnsIngest, UdpFlowIngest
from repro.core.config import FlowDNSConfig
from repro.dns.rr import RRType, a_record
from repro.dns.tcp import frame_messages
from repro.dns.wire import DnsMessage, Question, encode_message
from repro.netflow.exporter import FlowExporter
from repro.netflow.records import FlowRecord
from repro.util.benchio import record_bench

N_DNS_MESSAGES = 400
N_FLOWS = 6000
N_POOL_IPS = 200

#: Minimum fraction of the corpus that must make it through the live
#: sockets for the smoke to count (loopback UDP may shed a little).
MIN_INGEST_FRACTION = 0.8


def _dns_wires():
    wires = []
    for i in range(N_DNS_MESSAGES):
        name = f"svc{i % N_POOL_IPS}.bench.example"
        msg = DnsMessage()
        msg.questions.append(Question(name, RRType.A))
        msg.answers.append(a_record(name, f"10.20.{(i % N_POOL_IPS) // 250}.{i % 250 + 1}", 600))
        wires.append(encode_message(msg))
    return wires


def _flow_datagrams():
    flows = [
        FlowRecord(ts=20.0 + (i % 40), src_ip=f"10.20.0.{i % N_POOL_IPS % 250 + 1}",
                   dst_ip="100.64.0.1", bytes_=120 + i % 31)
        for i in range(N_FLOWS)
    ]
    return len(flows), list(FlowExporter(version=9, batch_size=24).export(flows))


def _wait_progress(value, minimum, timeout=60.0, stall=3.0):
    """Poll ``value()`` until ``minimum``, progress stalls, or timeout.

    Returns ``(final_value, perf_counter_of_last_progress)`` so rates can
    exclude the stall-detection wait itself.
    """
    deadline = time.monotonic() + timeout
    last, last_change = value(), time.monotonic()
    last_progress = time.perf_counter()
    while last < minimum and time.monotonic() < deadline:
        time.sleep(0.02)
        current = value()
        if current != last:
            last, last_change = current, time.monotonic()
            last_progress = time.perf_counter()
        elif time.monotonic() - last_change > stall:
            break
    return value(), last_progress


def test_async_live_ingest_throughput(benchmark=None):
    wires = _dns_wires()
    n_flows, datagrams = _flow_datagrams()
    dns_ingest = TcpDnsIngest(clock=lambda: 5.0)
    flow_ingest = UdpFlowIngest()
    engine = AsyncEngine(FlowDNSConfig())
    result = {}
    runner = threading.Thread(
        target=lambda: result.update(
            report=engine.run([dns_ingest], [flow_ingest])
        ),
        daemon=True,
    )
    runner.start()
    dns_addr = dns_ingest.wait_ready()
    flow_addr = flow_ingest.wait_ready()

    # DNS phase: one TCP stream, timed from first byte to last stored.
    stream = frame_messages(wires)
    t0 = time.perf_counter()
    with socket.create_connection(dns_addr, timeout=10.0) as conn:
        conn.sendall(stream)
    dns_seen, t_done = _wait_progress(lambda: engine.dns_records_seen, len(wires))
    dns_elapsed = t_done - t0

    # Flow phase: pour the datagrams down loopback UDP, lightly paced.
    t0 = time.perf_counter()
    with socket.socket(socket.AF_INET, socket.SOCK_DGRAM) as sock:
        for i, datagram in enumerate(datagrams):
            sock.sendto(datagram, flow_addr)
            if i % 8 == 0:
                time.sleep(0.0005)
    flows_seen, t_done = _wait_progress(lambda: engine.flows_seen, n_flows)
    flow_elapsed = t_done - t0

    engine.request_stop()
    runner.join(timeout=30.0)
    assert not runner.is_alive(), "async engine failed to drain and stop"
    report = result["report"]

    assert report.dns_records == dns_seen
    assert report.flow_records == flows_seen
    assert dns_seen >= MIN_INGEST_FRACTION * len(wires)
    assert flows_seen >= MIN_INGEST_FRACTION * n_flows
    assert report.matched_flows > 0
    # Whatever was shed must be *accounted* (buffer drops), never silent:
    udp_stats = flow_ingest.ingest_stats
    assert udp_stats.received - udp_stats.malformed - udp_stats.dropped >= 0

    dns_rate = dns_seen / dns_elapsed if dns_elapsed > 0 else 0.0
    flow_rate = flows_seen / flow_elapsed if flow_elapsed > 0 else 0.0
    record_bench("async_dns_msgs_per_sec", round(dns_rate))
    record_bench("async_udp_flows_per_sec", round(flow_rate))
    record_bench("async_ingest_loss_rate", round(report.overall_loss_rate, 6))
    print(f"\nasync live ingest: dns={dns_rate:,.0f} rec/s "
          f"udp flows={flow_rate:,.0f} rec/s "
          f"(ingested {flows_seen}/{n_flows} flows, "
          f"loss={report.overall_loss_rate:.3%})")
