"""Shared fixtures for the benchmark harness.

The expensive simulated deployments run once per session; each figure's
bench consumes the shared reports and prints its ``paper= measured=``
rows. Every bench test wraps its (re)computation in the ``benchmark``
fixture so the harness runs under ``pytest benchmarks/ --benchmark-only``.
"""

from __future__ import annotations

from collections import defaultdict

import pytest

from repro.analysis import ServiceBytesCollector, run_variant
from repro.bgp.rib import Rib
from repro.core.variants import FIGURE3_VARIANTS, Variant
from repro.workloads.isp import large_isp

#: One simulated day at the large ISP (headline + Figures 4, 5, 6).
DAY = 86400.0
#: Half a day per ablation variant (Figures 3 and 7).
HALF_DAY = 43200.0


class BgpSeriesCollector:
    """on_result hook: per-(service, origin AS, hour) byte series."""

    def __init__(self, rib: Rib, services, t0: float = 0.0, bucket: float = 3600.0):
        self.rib = rib
        self.services = set(services)
        self.t0 = t0
        self.bucket = bucket
        self.buckets = defaultdict(int)  # (service, asn, hour) -> bytes

    def __call__(self, result):
        if not result.matched or result.service not in self.services:
            return
        asn = self.rib.origin_asn(result.flow.src_ip)
        if asn is None:
            return
        hour = int((result.flow.ts - self.t0) // self.bucket)
        self.buckets[(result.service, asn, hour)] += result.flow.bytes_

    def totals_by_asn(self, service):
        out = defaultdict(int)
        for (svc, asn, _hour), nbytes in self.buckets.items():
            if svc == service:
                out[asn] += nbytes
        return dict(out)

    def dominant_asns(self, service, coverage=0.95):
        totals = sorted(self.totals_by_asn(service).items(), key=lambda kv: kv[1], reverse=True)
        grand = sum(v for _, v in totals)
        chosen = []
        acc = 0
        for asn, nbytes in totals:
            chosen.append(asn)
            acc += nbytes
            if grand and acc / grand >= coverage:
                break
        return chosen


class _Tee:
    """Fan one on_result hook out to several collectors."""

    def __init__(self, *hooks):
        self.hooks = hooks

    def __call__(self, result):
        for hook in self.hooks:
            hook(result)


@pytest.fixture(scope="session")
def main_day():
    """Main variant, one simulated day at the large ISP, with collectors."""
    workload = large_isp(seed=7, duration=DAY)
    service_bytes = ServiceBytesCollector()
    rib = Rib.from_entries(workload.hosting.rib_entries())
    bgp = BgpSeriesCollector(
        rib, services=("s1-streaming.tv", "s2-streaming.tv"), t0=workload.t0
    )
    run = run_variant(
        workload, Variant.MAIN, sample_interval=3600.0, on_result=_Tee(service_bytes, bgp)
    )
    return {
        "workload": workload,
        "report": run.report,
        "service_bytes": service_bytes,
        "bgp": bgp,
        "rib": rib,
    }


@pytest.fixture(scope="session")
def variant_runs():
    """All Figure 3 variants over identical half-day replays."""
    out = {}
    for variant in FIGURE3_VARIANTS:
        workload = large_isp(seed=7, duration=HALF_DAY)
        out[variant] = run_variant(workload, variant, sample_interval=3600.0).report
    return out


def print_rows(title, rows):
    """Uniform paper-vs-measured output block."""
    print()
    print(f"== {title} ==")
    for row in rows:
        print(row)
