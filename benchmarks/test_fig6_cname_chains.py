"""Figure 6 / Appendix A.4: CNAME chain length ECDF.

Paper anchor: "more than 99% of the DNS records can be mapped with a
chain of 6 look-ups", tail extending to ~17.
"""

from conftest import print_rows

from repro.analysis import chain_length_ecdf, comparison_row


def test_fig6_chain_length_ecdf(benchmark, main_day):
    ecdf = benchmark.pedantic(
        lambda: chain_length_ecdf(main_day["report"]), rounds=1, iterations=1
    )
    as_dict = dict(ecdf)
    at_6 = max(frac for length, frac in ecdf if length <= 6)
    rows = [
        "ECDF points: " + " ".join(f"({l},{f:.4f})" for l, f in ecdf),
        comparison_row("fraction mapped within 6 look-ups", 0.99, at_6),
    ]
    print_rows("Figure 6: CNAME chain length ECDF", rows)

    assert at_6 >= 0.99
    # Chains of length 1 (plain A) and 2 (one CNAME) dominate.
    assert as_dict.get(2, 0.0) > 0.5
    # ECDF is monotone.
    fracs = [f for _l, f in ecdf]
    assert fracs == sorted(fracs)
    assert abs(fracs[-1] - 1.0) < 1e-9
