"""Figure 4: cumulative traffic volume per source AS for services S1/S2.

Paper anchors: "the traffic corresponding to the streaming service S1 is
originated mostly from only one AS, while the streaming service S2 is
originated mainly by two ASes", both with diurnal patterns.
"""

from collections import defaultdict

from conftest import print_rows


def test_fig4_s1_one_as_s2_two_ases(benchmark, main_day):
    bgp = benchmark.pedantic(lambda: main_day["bgp"], rounds=1, iterations=1)

    s1_totals = bgp.totals_by_asn("s1-streaming.tv")
    s2_totals = bgp.totals_by_asn("s2-streaming.tv")
    rows = [
        f"S1 bytes by AS: { {asn: f'{b/1e9:.1f}GB' for asn, b in sorted(s1_totals.items())} }",
        f"S2 bytes by AS: { {asn: f'{b/1e9:.1f}GB' for asn, b in sorted(s2_totals.items())} }",
        f"S1 dominant ASes paper=1 measured={len(bgp.dominant_asns('s1-streaming.tv'))}",
        f"S2 dominant ASes paper=2 measured={len(bgp.dominant_asns('s2-streaming.tv'))}",
    ]
    print_rows("Figure 4: per-source-AS volume for S1 / S2", rows)

    assert len(bgp.dominant_asns("s1-streaming.tv", coverage=0.95)) == 1
    assert len(bgp.dominant_asns("s2-streaming.tv", coverage=0.95)) == 2
    # S2's two ASes both carry a substantial share (not 99/1).
    shares = sorted(s2_totals.values(), reverse=True)
    assert shares[1] / sum(shares) > 0.15


def test_fig4_diurnal_pattern(benchmark, main_day):
    bgp = benchmark.pedantic(lambda: main_day["bgp"], rounds=1, iterations=1)
    # Hourly series for S1's dominant AS must show a diurnal swing.
    asn = bgp.dominant_asns("s1-streaming.tv")[0]
    hourly = defaultdict(int)
    for (svc, a, hour), nbytes in bgp.buckets.items():
        if svc == "s1-streaming.tv" and a == asn:
            hourly[hour] += nbytes
    series = [hourly[h] for h in sorted(hourly)]
    assert len(series) >= 20
    assert max(series) > 1.5 * min(s for s in series if s > 0)
    print_rows(
        "Figure 4a: S1 hourly volume (dominant AS)",
        ["hourly GB: " + " ".join(f"{v/1e9:.1f}" for v in series)],
    )
