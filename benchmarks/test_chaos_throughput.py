"""Chaos replay throughput: faulted wire bytes through the live engine.

PR 8's recorded benchmark: the same synthetic capture the replay
benchmark uses, but perturbed by the ``everything`` fault profile
before it reaches the engine. ``chaos_replay_flows_per_sec`` lands in
the per-PR bench JSON as trajectory data — record-only, no ratio gate:
fault injection changes how many flows survive (dropped datagrams,
corrupted templates), so a clean/chaos ratio would gate on the fault
plan, not the engine. The sanity floor only catches the injector gone
quadratic.
"""

import io
import time

from repro.core.invariants import assert_invariants
from repro.replay import FAULT_PROFILES, FaultInjector, replay_capture
from repro.util.benchio import record_bench

from benchmarks.test_replay_throughput import _build_capture

#: Absolute sanity floor, far under real numbers: catches the fault
#: injector or a hardened decode path gone quadratic, never timing noise.
MIN_FLOWS_PER_SEC = 1_000

CHAOS_BENCH_SEED = 42


def test_chaos_replay_throughput(tmp_path):
    path = str(tmp_path / "bench.fdc")
    n_flows = _build_capture(path)

    injector = FaultInjector(FAULT_PROFILES["everything"], seed=CHAOS_BENCH_SEED)
    t0 = time.perf_counter()
    frames = injector.apply(path)
    inject_elapsed = time.perf_counter() - t0

    sink = io.StringIO()
    t0 = time.perf_counter()
    report = replay_capture(frames, engine="threaded", sink=sink)
    replay_elapsed = time.perf_counter() - t0

    # Under faults the engine processes fewer flows than the clean
    # capture carried; throughput is measured over what it decoded.
    rows = [
        line for line in sink.getvalue().splitlines()
        if line and not line.startswith("#")
    ]
    assert_invariants(report, rows=len(rows))
    assert 0 < report.flow_records <= n_flows

    elapsed = inject_elapsed + replay_elapsed
    rate = report.flow_records / elapsed if elapsed > 0 else 0.0
    record_bench("chaos_replay_flows_per_sec", round(rate))
    print(f"\nchaos replay: {report.flow_records:,} flows in {elapsed:.2f}s "
          f"({inject_elapsed:.2f}s inject + {replay_elapsed:.2f}s replay) "
          f"= {rate:,.0f} flows/s (everything profile, threaded)")
    assert rate >= MIN_FLOWS_PER_SEC, (
        f"chaos replay throughput collapsed: "
        f"{rate:,.0f} < {MIN_FLOWS_PER_SEC:,} flows/s"
    )
