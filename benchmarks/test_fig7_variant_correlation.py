"""Figure 7 (+ Section 4 text): correlation rate per variant.

Paper means: Main 81.7 %, No Clear-Up 82.8 %, No Long 81.1 %,
No Rotation 79.5 %. No Split overlaps Main completely and is excluded
from the figure.
"""

from conftest import print_rows

from repro.analysis import comparison_row
from repro.core.variants import Variant

PAPER_RATES = {
    Variant.MAIN: 0.817,
    Variant.NO_CLEAR_UP: 0.828,
    Variant.NO_LONG: 0.811,
    Variant.NO_ROTATION: 0.795,
}


def test_fig7_correlation_rates(benchmark, variant_runs):
    reports = benchmark.pedantic(lambda: variant_runs, rounds=1, iterations=1)
    measured = {v: reports[v].correlation_rate for v in PAPER_RATES}
    rows = [
        comparison_row(f"correlation rate: {v.value}", paper, measured[v])
        for v, paper in PAPER_RATES.items()
    ]
    print_rows("Figure 7: correlation rate per variant", rows)

    # Ordering: NoClearUp >= Main > NoLong > NoRotation.
    assert measured[Variant.NO_CLEAR_UP] >= measured[Variant.MAIN] - 0.002
    assert measured[Variant.MAIN] > measured[Variant.NO_ROTATION]
    assert measured[Variant.MAIN] >= measured[Variant.NO_LONG]
    assert measured[Variant.NO_LONG] > measured[Variant.NO_ROTATION]
    # Absolute values within 2.5 points of the paper.
    for variant, paper in PAPER_RATES.items():
        assert abs(measured[variant] - paper) < 0.025, variant

    # No Split "has a complete overlap with the Main benchmark".
    no_split = reports[Variant.NO_SPLIT].correlation_rate
    assert abs(no_split - measured[Variant.MAIN]) < 1e-9


def test_fig7_hourly_series_stable(benchmark, variant_runs):
    reports = benchmark.pedantic(lambda: variant_runs, rounds=1, iterations=1)
    main_hourly = reports[Variant.MAIN].hourly_correlation_rates()
    rows = [
        "main hourly: " + " ".join(f"{r:.3f}" for r in main_hourly),
    ]
    print_rows("Figure 7: hourly correlation (Main)", rows)
    # The paper's Figure 7 y-range is ~0.75-0.90 for all hours.
    assert all(0.72 <= r <= 0.92 for r in main_hourly)
