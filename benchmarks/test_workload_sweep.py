"""Workload-generator perf gate + sweep throughput recorder.

Three numbers back the claim that the synthetic-workload harness can
stand in for the paper's ISP feeds at scale:

* the streaming generator emits wire frames at >= 200K flows/s on one
  core (``workload_gen_flows_per_sec`` — a hard gate, since a slower
  generator would dominate every sweep's wall clock);
* a configuration with one million clients streams to disk in bounded
  memory — the generator's footprint is the domain universe plus the
  reorder buffer, never the client population — and the capture then
  replays through all three live engines to identical rows with clean
  accounting (the acceptance bar for trusting sweep numbers at
  internet scale);
* a three-point client-count sweep records its per-config throughput
  rows into the bench JSON, so the per-PR artifacts accumulate a
  scaling trajectory alongside the scalar gates.

Replay legs pin ``fillup_workers_per_stream=1`` and disable CNAME-chain
memoisation — the two knobs ``tests/test_generated_differential.py``
shows are required for byte-identical rows across engines.
"""

import dataclasses
import io
import os
import tempfile
import time
import tracemalloc

from repro.core.config import EngineConfig
from repro.core.invariants import assert_invariants
from repro.replay.runner import REPLAY_ENGINES, replay_capture
from repro.util.benchio import record_bench
from repro.workloads.generator import GeneratorParams, WorkloadGenerator
from repro.workloads.sweep import SweepSpec, run_sweep

#: Hard floor for the generator gate, flows per wall-clock second.
GEN_FLOOR = 200_000
#: Measurement config: the aggregate rate is pinned (base_rate) so the
#: measured number does not ride on the client-count axis, and the
#: exporter batch is widened to its throughput sweet spot.
GEN_PARAMS = GeneratorParams(seed=2003, base_rate=2500.0, duration=60.0,
                             batch_size=60)

#: One million clients at a residential trickle: the capture stays
#: CI-sized (~22K flows) while the *population* is internet-scale.
MILLION = GeneratorParams(seed=1007, clients=1_000_000,
                          per_client_rate=0.0002, duration=40.0)
#: Generous bound on tracemalloc peak while streaming MILLION to disk;
#: measured ~1.4 MB, so 64 MiB fails only on genuinely unbounded state
#: (e.g. per-client structures or an unbounded reorder buffer).
MILLION_PEAK_BYTES = 64 * 1024 * 1024


def _deterministic_leg(engine):
    """The row-identical replay config (single fill worker, no memo)."""
    config = EngineConfig.for_replay_leg(engine)
    return dataclasses.replace(
        config,
        flowdns=config.flowdns.replace(
            fillup_workers_per_stream=1, memoize_cname_chains=False
        ),
    )


def test_generator_throughput_gate():
    best = 0.0
    for _ in range(3):
        report = WorkloadGenerator(GEN_PARAMS).write(io.BytesIO())
        best = max(best, report.flows_per_sec)
    record_bench("workload_gen_flows_per_sec", round(best, 1))
    print(f"\ngenerator: {best:,.0f} flows/s "
          f"({report.flows} flows, floor {GEN_FLOOR:,})")
    assert best >= GEN_FLOOR


def test_million_client_capture_bounded_and_identical_across_engines():
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "million.fdc")
        tracemalloc.start()
        gen_report = WorkloadGenerator(MILLION).write(path)
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        assert gen_report.flows > 10_000
        assert peak < MILLION_PEAK_BYTES
        record_bench("workload_gen_1m_client_peak_mb", round(peak / 1e6, 2))
        print(f"\n1M clients: {gen_report.flows} flows, "
              f"{gen_report.wire_bytes / 1e6:.1f} MB wire, "
              f"peak {peak / 1e6:.1f} MB traced")

        baseline_rows = None
        for engine in REPLAY_ENGINES:
            sink = io.StringIO()
            start = time.perf_counter()
            report = replay_capture(path, engine=engine,
                                    config=_deterministic_leg(engine),
                                    sink=sink, num_shards=2)
            elapsed = time.perf_counter() - start
            rows = sorted(line for line in sink.getvalue().splitlines()
                          if line and not line.startswith("#"))
            assert_invariants(report, rows=len(rows))
            assert report.matched_flows > 0
            if baseline_rows is None:
                baseline_rows = rows
            else:
                assert rows == baseline_rows, f"{engine} rows diverged"
            rate = report.flow_records / elapsed if elapsed > 0 else 0.0
            record_bench(f"workload_1m_replay_{engine}_flows_per_sec",
                         round(rate, 1))
            print(f"1M replay [{engine}]: {rate:,.0f} flows/s, "
                  f"{len(rows)} rows")


def test_three_point_sweep_records_per_config_throughput():
    spec = SweepSpec(
        clients=(1000, 4000, 16000),
        engines=tuple(REPLAY_ENGINES),
        base=GeneratorParams(seed=3001, duration=20.0),
    )
    with tempfile.TemporaryDirectory() as tmp:
        rows = run_sweep(spec, tmp, log=lambda message: None)
    assert len(rows) == 3 * len(REPLAY_ENGINES)
    for row in rows:
        assert row["gen_flows_per_sec"] > 0
        assert row["replay_flows_per_sec"] > 0
        assert row["match_rate"] > 0.9
    biggest = max(rows, key=lambda r: r["clients"])
    print(f"\nsweep: {len(rows)} legs; at {biggest['clients']} clients "
          f"{biggest['engine']} replayed "
          f"{biggest['replay_flows_per_sec']:,} flows/s "
          f"(match {biggest['match_rate']:.3f})")
