"""Figure 8 / Appendix A.6: TTL ECDFs per record type.

Paper anchors: 99 % of A/AAAA TTLs < 3600 s, 99 % of CNAME TTLs < 7200 s,
and >70 % of records with TTL < 300 s — the numbers that fix
AClearUpInterval=3600 and CClearUpInterval=7200.
"""

from conftest import print_rows

from repro.analysis import comparison_row
from repro.dns.rr import RRType
from repro.dns.ttl import (
    CANONICAL_TTL_TICKS,
    address_fraction_below,
    combined_fraction_below,
    summarize_ttls,
)
from repro.workloads.isp import large_isp


def _summarize():
    workload = large_isp(seed=7, duration=2 * 3600.0)
    return summarize_ttls(workload.dns_records())


def test_fig8_ttl_anchors(benchmark):
    summary = benchmark.pedantic(_summarize, rounds=1, iterations=1)
    a_below_3600 = address_fraction_below(summary, 3599)
    cname_below_7200 = summary.fraction_below(RRType.CNAME, 7199)
    # The "70 % below 300 s" quote appears in the accuracy analysis,
    # which observes IP↔name pairs — i.e. the address records; CNAME
    # records have systematically longer TTLs (Figure 8) and would
    # dilute the combined number.
    below_300 = address_fraction_below(summary, 300)
    combined_below_300 = combined_fraction_below(summary, 300)
    rows = [
        comparison_row("A/AAAA TTL < 3600 s", 0.99, a_below_3600),
        comparison_row("CNAME TTL < 7200 s", 0.99, cname_below_7200),
        comparison_row("address records TTL < 300 s", 0.70, below_300),
        comparison_row("all records TTL < 300 s (info)", 0.70, combined_below_300),
    ]
    for rtype, fracs in summary.tick_table().items():
        rows.append(
            f"ECDF {rtype.name:<5s} at {CANONICAL_TTL_TICKS}: "
            + " ".join(f"{f:.3f}" for f in fracs)
        )
    print_rows("Figure 8: TTL ECDF per record type", rows)

    assert a_below_3600 >= 0.985
    assert cname_below_7200 >= 0.985
    assert below_300 >= 0.60
    # CNAME TTLs are systematically longer than address TTLs.
    assert summary.fraction_below(RRType.CNAME, 600) < address_fraction_below(summary, 600)


def test_fig8_derives_clear_up_intervals(benchmark):
    summary = benchmark.pedantic(_summarize, rounds=1, iterations=1)
    # Our stream carries slightly more >=3600 s address mass than the
    # pure TTL model because long-lived origin services resolve with
    # deliberately long TTLs; derive at 98 % (the curve's knee) — the
    # paper's rule "pick the interval below which ~99 % of records fall"
    # still lands on the deployed constants.
    a_interval = summary.suggest_clear_up_interval(RRType.A, 0.98)
    cname_interval = summary.suggest_clear_up_interval(RRType.CNAME, 0.98)
    rows = [
        comparison_row("derived AClearUpInterval", 3600.0, float(a_interval)),
        comparison_row("derived CClearUpInterval", 7200.0, float(cname_interval)),
    ]
    print_rows("Appendix A.6: clear-up interval derivation", rows)
    assert a_interval <= 3600
    assert cname_interval <= 7200
