"""Columnar DNS fill throughput vs the per-message object path.

PR 9's acceptance gate: the columnar fill lane
(:func:`repro.dns.columnar.decode_fill_columns` →
``FillUpProcessor.process_columns`` → ``DnsStorage.add_many_columns``,
no ``Header``/``DnsMessage``/``ResourceRecord`` objects anywhere) must
run the same wire corpus at ≥3× the object reference path
(``decode_message`` → ``records_from_message`` → ``process_batch``).
Both paths run end-to-end into a fresh storage, so the ratio includes
the batched label hashing and one-lock-per-shard store the columnar
side buys — exactly what this PR removes from the 20K msgs/s plateau.

The corpus mirrors live resolver traffic as the paper's FillUp sees it:
NOERROR responses with compressed names, CDN CNAME chains in front of
the A answers, a sprinkling of AAAA, unknown-type RRs (SVCB/HTTPS
stand-ins) and EDNS OPT riding in additional — plus the queries and
error rcodes FillUp filters out.
"""

import time

from repro.core.config import FlowDNSConfig
from repro.core.fillup import FillUpProcessor
from repro.core.pipeline import FillLane
from repro.core.storage_adapter import DnsStorage
from repro.dns.rr import RClass, RRType, ResourceRecord
from repro.dns.wire import DnsMessage, Header, Question, Rcode, encode_message
from repro.util.benchio import record_bench
from repro.util.interning import clear_intern_tables

N_MESSAGES = 2_000
N_POOL_NAMES = 120
CHUNK = 256  # payloads per lane wake-up, ~an engine batch

#: The gate ratio ISSUE 9 demands.
MIN_SPEEDUP = 3.0


def _corpus():
    wires = []
    for i in range(N_MESSAGES):
        name = f"svc{i % N_POOL_NAMES}.pool.example"
        if i % 17 == 0:  # queries: filtered, not stored
            msg = DnsMessage(header=Header(qr=False),
                             questions=[Question(name, RRType.A, RClass.IN)])
        elif i % 23 == 0:  # NXDOMAIN: filtered, not stored
            msg = DnsMessage(header=Header(rcode=Rcode.NXDOMAIN),
                             questions=[Question(name, RRType.A, RClass.IN)])
        else:
            answers = []
            if i % 3 == 0:  # CDN front: www → svc chain before the address
                answers.append(ResourceRecord(f"www{i % N_POOL_NAMES}.pool.example",
                                              RRType.CNAME, RClass.IN, 600, name))
            if i % 11 == 0:
                answers.append(ResourceRecord(
                    name, RRType.AAAA, RClass.IN, 600,
                    bytes([0x20, 0x01, 0x0d, 0xb8] + [0] * 10
                          + [i % 251, i % 250 + 1])))
            # CDN responses answer with several addresses per name (the
            # round-robin set dig shows for any big origin).
            for j in range(2 + i % 4):
                answers.append(ResourceRecord(
                    name, RRType.A, RClass.IN, 600,
                    bytes([10, 30 + j, i % 120, i % 250 + 1])))
            if i % 7 == 0:  # SVCB/HTTPS stand-in: unknown rtype, skip-and-count
                answers.append(ResourceRecord(name, 65, RClass.IN, 600, b"\x00\x01"))
            additionals = ([ResourceRecord(".", RRType.OPT, 4096, 0, b"")]
                           if i % 4 == 0 else [])
            msg = DnsMessage(questions=[Question(name, RRType.A, RClass.IN)],
                             answers=answers, additionals=additionals)
        wires.append((1000.0 + i * 0.01, encode_message(msg)))
    return [wires[start:start + CHUNK] for start in range(0, len(wires), CHUNK)]


def _run(chunks, columnar):
    clear_intern_tables()
    storage = DnsStorage(FlowDNSConfig())
    processor = FillUpProcessor(storage)
    lane = FillLane(processor, storage, exact_ttl=False, columnar=columnar)
    for chunk in chunks:
        lane.process_items(list(chunk))
    return processor.stats, storage


def test_columnar_fill_beats_object_path():
    """Gate: columnar decode→fill ≥3× the object path, same corpus."""
    chunks = _corpus()

    # Correctness first (doubles as the warmup pass): identical counters
    # and identical stored state before any clock starts.
    ref_stats, ref_storage = _run(chunks, columnar=False)
    col_stats, col_storage = _run(chunks, columnar=True)
    assert col_stats == ref_stats
    assert col_stats.raw_messages == N_MESSAGES
    assert col_stats.records_stored > 0
    assert col_stats.records_unknown_type > 0  # tolerance path exercised
    assert col_storage.total_entries() == ref_storage.total_entries()
    probe_now = 1000.0 + N_MESSAGES * 0.01
    for i in range(N_POOL_NAMES):
        ip = f"10.30.{i % 120}.{i % 250 + 1}"
        assert (col_storage.lookup_ip(ip, probe_now)
                == ref_storage.lookup_ip(ip, probe_now))

    # Interleaved best-of-7 pairs (the anti-flake scheme the flow-lane
    # gate uses): a machine-wide noise burst hits adjacent samples of
    # both paths instead of deflating one side of the ratio.
    t_object = t_columnar = float("inf")
    for _ in range(7):
        start = time.perf_counter()
        _run(chunks, columnar=False)
        t_object = min(t_object, time.perf_counter() - start)
        start = time.perf_counter()
        _run(chunks, columnar=True)
        t_columnar = min(t_columnar, time.perf_counter() - start)

    ratio = t_object / t_columnar
    msgs_per_sec = N_MESSAGES / t_columnar
    record_bench("dns_columnar_speedup", round(ratio, 2))
    record_bench("dns_fill_msgs_per_sec", round(msgs_per_sec))
    record_bench("dns_fill_object_msgs_per_sec", round(N_MESSAGES / t_object))
    print(f"\ndns columnar fill: object {t_object * 1e3:.1f} ms, columnar "
          f"{t_columnar * 1e3:.1f} ms, {ratio:.1f}x, {msgs_per_sec:,.0f} msgs/s")
    assert ratio >= MIN_SPEEDUP, (
        f"columnar DNS fill only {ratio:.2f}x the object path "
        f"({t_object:.4f}s vs {t_columnar:.4f}s)"
    )
