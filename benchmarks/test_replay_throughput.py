"""Replay throughput: captured wire bytes through the live engines.

PR 5's recorded benchmark: a synthetic capture (NetFlow v9 export
datagrams + wire-format DNS messages, the same length-framed ``.fdc``
format the golden corpus uses) replayed at max speed through the
threaded engine — capture decode, per-datagram collector decode,
correlate, TSV write, end to end. ``replay_flows_per_sec`` lands in the
per-PR bench JSON as trajectory data.

No hard ratio gate: replay speed tracks the engine-throughput gates
that already exist (`test_engine_throughput.py`); this file pins the
*capture layer's* overhead as a recorded number plus a sanity floor,
and smoke-replays the checked-in golden corpus through every engine —
the CI ``replay-smoke`` step.
"""

import io
import pathlib
import time

from repro.core.config import FlowDNSConfig
from repro.dns.rr import RRType, a_record
from repro.dns.wire import DnsMessage, Question, encode_message
from repro.netflow.exporter import FlowExporter
from repro.netflow.records import FlowRecord
from repro.replay import (
    LANE_DNS,
    LANE_FLOW,
    REPLAY_ENGINES,
    SCENARIOS,
    CaptureFrame,
    replay_capture,
    write_capture,
)
from repro.util.benchio import record_bench

GOLDEN_DIR = pathlib.Path(__file__).parent.parent / "tests" / "data" / "golden"

N_DNS_MESSAGES = 300
N_FLOWS = 30_000
N_POOL_IPS = 250

#: Absolute sanity floor, far under real numbers (tens of thousands/s
#: here): catches a capture layer gone quadratic, never timing noise.
MIN_FLOWS_PER_SEC = 2_000


def _build_capture(path: str) -> int:
    frames = []
    for i in range(N_DNS_MESSAGES):
        name = f"svc{i % N_POOL_IPS}.replay.example"
        msg = DnsMessage()
        msg.questions.append(Question(name, RRType.A))
        msg.answers.append(a_record(name, f"10.60.0.{i % N_POOL_IPS + 1}", 600))
        frames.append(CaptureFrame(0.1 * i, LANE_DNS, encode_message(msg)))
    flows = [
        FlowRecord(ts=40.0 + (i % 30), src_ip=f"10.60.0.{i % N_POOL_IPS + 1}",
                   dst_ip="100.64.0.1", bytes_=100 + i % 37)
        for i in range(N_FLOWS)
    ]
    ts = 40.0
    for datagram in FlowExporter(version=9, batch_size=30).export(flows):
        frames.append(CaptureFrame(ts, LANE_FLOW, datagram))
        ts += 0.001
    write_capture(path, frames)
    return len(flows)


def test_replay_throughput(tmp_path, benchmark=None):
    path = str(tmp_path / "bench.fdc")
    n_flows = _build_capture(path)

    t0 = time.perf_counter()
    report = replay_capture(path, engine="threaded")
    elapsed = time.perf_counter() - t0

    assert report.flow_records == n_flows
    assert report.matched_flows == n_flows
    assert report.dns_records == N_DNS_MESSAGES

    rate = n_flows / elapsed if elapsed > 0 else 0.0
    record_bench("replay_flows_per_sec", round(rate))
    print(f"\nreplay: {n_flows:,} flows in {elapsed:.2f}s "
          f"= {rate:,.0f} flows/s (max speed, threaded)")
    assert rate >= MIN_FLOWS_PER_SEC, (
        f"replay throughput collapsed: {rate:,.0f} < {MIN_FLOWS_PER_SEC:,} flows/s"
    )


def test_replay_smoke_golden_corpus_all_engines():
    """Every golden capture replays through every engine — the cheap
    always-on cross-check behind the full differential harness in
    ``tests/test_replay_differential.py``."""
    total_flows = 0
    for name in sorted(SCENARIOS):
        rows = {}
        for engine in REPLAY_ENGINES:
            sink = io.StringIO()
            report = replay_capture(
                str(GOLDEN_DIR / f"{name}.fdc"),
                engine=engine,
                config=FlowDNSConfig(),
                sink=sink,
                num_shards=2,
            )
            assert report.flow_records > 0, (name, engine)
            rows[engine] = sorted(
                line for line in sink.getvalue().splitlines()
                if not line.startswith("#")
            )
        assert rows["threaded"] == rows["sharded"] == rows["async"], name
        total_flows += report.flow_records
    record_bench("replay_smoke_golden_flows", total_flows)
