"""Headline metrics (Section 4): correlation rate, loss, write delay.

Paper: "The ratio of correlated traffic to the total traffic … is 81.7%
on average for both deployments", "without any significant loss, i.e.
0.01% loss", "results are written to disk by a maximum delay of 45
seconds".
"""

from conftest import print_rows

from repro.analysis import comparison_row, run_variant
from repro.core.variants import Variant
from repro.workloads.isp import small_isp

PAPER_CORRELATION = 0.817
PAPER_MAX_LOSS = 0.0001
PAPER_MAX_WRITE_DELAY = 45.0


def test_large_isp_headline(benchmark, main_day):
    report = benchmark.pedantic(lambda: main_day["report"], rounds=1, iterations=1)
    rows = [
        comparison_row("correlation rate (bytes)", PAPER_CORRELATION, report.correlation_rate),
        comparison_row("stream loss rate", PAPER_MAX_LOSS, report.overall_loss_rate),
        comparison_row("max write delay (s)", PAPER_MAX_WRITE_DELAY, report.max_write_delay),
    ]
    print_rows("Headline: large ISP, one simulated day", rows)
    assert abs(report.correlation_rate - PAPER_CORRELATION) < 0.025
    assert report.overall_loss_rate <= PAPER_MAX_LOSS
    assert report.max_write_delay <= PAPER_MAX_WRITE_DELAY


def test_small_isp_headline(benchmark):
    def run():
        workload = small_isp(seed=11, duration=43200.0)
        return run_variant(workload, Variant.MAIN).report

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        comparison_row("correlation rate (bytes)", PAPER_CORRELATION, report.correlation_rate),
        comparison_row("mean CPU (%, paper ~300)", 300.0, report.mean_cpu_percent),
        comparison_row("mean memory (GB, paper ~6)", 6.0, report.mean_memory_gb),
    ]
    print_rows("Headline: small ISP, half a simulated day", rows)
    assert abs(report.correlation_rate - PAPER_CORRELATION) < 0.025
    assert 150.0 <= report.mean_cpu_percent <= 600.0
    assert 3.0 <= report.mean_memory_gb <= 9.0
