"""Appendix A.8: applying the exact TTLs (the rejected design).

Paper anchors: "the internal buffers of all the streams start to
overload from the very first minutes … with the loss rate of over 90%",
and "the memory usage is doubled although only 10% of the data is
received at the system".
"""

from conftest import print_rows

from repro.analysis import comparison_row, run_variant
from repro.core.variants import Variant
from repro.workloads.isp import large_isp

TWO_HOURS = 2 * 3600.0


def _run_pair():
    exact = run_variant(
        large_isp(seed=7, duration=TWO_HOURS),
        Variant.EXACT_TTL,
        sample_interval=300.0,
    ).report
    main = run_variant(
        large_isp(seed=7, duration=TWO_HOURS),
        Variant.MAIN,
        sample_interval=300.0,
    ).report
    return exact, main


def test_a8_exact_ttl_meltdown(benchmark):
    exact, main = benchmark.pedantic(_run_pair, rounds=1, iterations=1)
    steady_loss = [s.loss_rate for s in exact.samples[2:]]
    mean_loss = sum(steady_loss) / len(steady_loss)
    exact_mem = exact.samples[-1].memory_bytes / 2**30
    main_mem = main.samples[-1].memory_bytes / 2**30
    # Steady-state receipt (the paper's "only 10% of the data is
    # received"); the overall average is diluted by the loss-free
    # warm-up interval before the buffers first overflow.
    received_fraction = 1.0 - mean_loss
    rows = [
        comparison_row("steady-state loss rate", 0.90, mean_loss),
        comparison_row("memory vs Main (×)", 2.0, exact_mem / main_mem),
        comparison_row("fraction of data received", 0.10, received_fraction),
        f"exact-TTL memory after run: {exact_mem:.1f} GiB (Main: {main_mem:.1f} GiB)",
    ]
    print_rows("Appendix A.8: exact-TTL expiry", rows)

    # Loss >90% in steady state, starting within the first minutes.
    assert mean_loss > 0.90
    assert exact.samples[1].loss_rate > 0.5  # "from the very first minutes"
    # Main never loses anything on the same workload.
    assert main.overall_loss_rate == 0.0
    # Memory well above Main's despite receiving a fraction of the data.
    assert exact_mem > 1.4 * main_mem
    assert received_fraction < 0.15
