"""Figure 2: CPU and memory usage for the Main benchmark over a week.

Paper anchors: CPU around 2500 % (25 cores) in a 2200–2600 band, memory
oscillating between 15 and 30 GB, and all three series (traffic, CPU,
memory) showing diurnal patterns with evening peaks.

The week is simulated at a reduced record rate (the cost model's scale
factors map resources back to deployment scale), which keeps the bench
under a minute while preserving 7 full diurnal cycles.
"""

import math

from conftest import print_rows

from repro.analysis import comparison_row, run_variant
from repro.core.variants import Variant
from repro.workloads.isp import large_isp

WEEK = 7 * 86400.0


def _run_week():
    workload = large_isp(seed=7, duration=WEEK, resolution_rate=0.3)
    return workload, run_variant(workload, Variant.MAIN, sample_interval=3600.0).report


def _pearson(xs, ys):
    n = len(xs)
    mx = sum(xs) / n
    my = sum(ys) / n
    cov = sum((x - mx) * (y - my) for x, y in zip(xs, ys))
    vx = math.sqrt(sum((x - mx) ** 2 for x in xs))
    vy = math.sqrt(sum((y - my) ** 2 for y in ys))
    return cov / (vx * vy) if vx and vy else 0.0


def test_fig2_week_cpu_and_memory(benchmark):
    workload, report = benchmark.pedantic(_run_week, rounds=1, iterations=1)
    cpus = [s.cpu_percent for s in report.samples]
    mems = [s.memory_bytes / 2**30 for s in report.samples]
    traffic = [s.traffic_bytes for s in report.samples]

    rows = [
        comparison_row("mean CPU %  (paper ~2450)", 2450.0, sum(cpus) / len(cpus)),
        comparison_row("min CPU %   (paper ~2200)", 2200.0, min(cpus)),
        comparison_row("max CPU %   (paper ~2600)", 2600.0, max(cpus)),
        comparison_row("min memory GB (paper ~15)", 15.0, min(mems)),
        comparison_row("max memory GB (paper ~30)", 30.0, max(mems)),
        comparison_row("CPU-traffic correlation (diurnal)", 0.9, _pearson(cpus, traffic)),
    ]
    print_rows("Figure 2: Main over one simulated week", rows)

    # A full week of hourly samples.
    assert len(report.samples) >= 7 * 24 - 1
    # CPU band: within ~25% of the paper's absolute figures.
    assert 1800 <= min(cpus) and max(cpus) <= 3400
    # Memory band overlaps the paper's 15-30 GB corridor.
    assert 8.0 <= min(mems) and max(mems) <= 36.0
    assert max(mems) - min(mems) >= 2.0  # visible oscillation
    # CPU follows the traffic volume (the diurnal pattern).
    assert _pearson(cpus, traffic) > 0.8
    # Peak CPU lands in the evening hours (18:00-23:00 local).
    peak = max(report.samples, key=lambda s: s.cpu_percent)
    peak_hour = (peak.t_start % 86400.0) / 3600.0
    assert 17.0 <= peak_hour <= 23.5
