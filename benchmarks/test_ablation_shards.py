"""Design-choice ablations beyond the paper's four variants.

* ConcurrentMap shard count (the Go concurrent-map default is 32);
* labeler choice: FNV-hash vs last-octet split balance;
* CNAME loop-limit sensitivity (the paper chose 6).
"""

import pytest

from conftest import print_rows

from repro.analysis import run_variant
from repro.core.config import FlowDNSConfig
from repro.core.labeler import ip_label, last_octet_label
from repro.core.variants import Variant
from repro.storage.concurrent_map import ConcurrentMap
from repro.workloads.isp import large_isp


@pytest.mark.parametrize("shards", [1, 4, 16, 64])
def test_ablation_shard_count_insert_lookup(benchmark, shards):
    keys = [f"10.{i % 200}.{i % 250}.{i % 100}" for i in range(5000)]

    def work():
        cmap = ConcurrentMap(shard_count=shards)
        for key in keys:
            cmap.set(key, "name")
        hits = sum(1 for key in keys if cmap.get(key) is not None)
        return hits

    hits = benchmark(work)
    assert hits == len(keys)


def test_ablation_labeler_balance(benchmark):
    """Hash labels spread a dense CDN /24 pool; last-octet labels do too,
    but collapse when providers number hosts identically across /24s."""

    pool_dense = [f"198.51.100.{i}" for i in range(1, 255)]
    pool_same_host = [f"10.{i}.0.7" for i in range(200)]

    def spreads():
        out = {}
        for name, pool in (("dense /24", pool_dense), ("same host id", pool_same_host)):
            hash_splits = {ip_label(ip) % 10 for ip in pool}
            octet_splits = {last_octet_label(ip) % 10 for ip in pool}
            out[name] = (len(hash_splits), len(octet_splits))
        return out

    result = benchmark.pedantic(spreads, rounds=1, iterations=1)
    rows = [
        f"{name:<14s} hash-splits={h:2d}/10  last-octet-splits={o:2d}/10"
        for name, (h, o) in result.items()
    ]
    print_rows("Ablation: labeler split balance", rows)
    assert result["dense /24"][0] == 10
    assert result["same host id"][0] == 10
    assert result["same host id"][1] == 1  # the failure mode hashing avoids


@pytest.mark.parametrize("loop_limit", [1, 3, 6, 10])
def test_ablation_loop_limit(benchmark, loop_limit):
    """Correlation is insensitive above ~6 (the paper's chain ECDF)."""

    def run():
        workload = large_isp(seed=31, duration=3600.0, n_benign=400)
        config = FlowDNSConfig(cname_loop_limit=loop_limit)
        return run_variant(workload, Variant.MAIN, base_config=config).report

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    # Store per-limit results on the module for the final comparison.
    _RESULTS[loop_limit] = report.correlation_rate
    assert report.correlation_rate > 0.5
    if 6 in _RESULTS and 10 in _RESULTS:
        assert abs(_RESULTS[10] - _RESULTS[6]) < 0.005
        print_rows(
            "Ablation: CNAME loop limit",
            [f"limit={k:<3d} correlation={v:.4f}" for k, v in sorted(_RESULTS.items())],
        )


_RESULTS = {}
