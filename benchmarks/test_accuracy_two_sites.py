"""Section 4 "Accuracy": the two-website experiment.

Paper anchors: "In the first scenario, we observe that all the traffic
is correlated correctly, while in the second scenario, all the traffic
is correlated to the second domain name. In other words, we had an
accuracy of 100% and 50% in the first and second scenarios."
"""

from conftest import print_rows

from repro.analysis import ResultRecorder, comparison_row
from repro.core.config import FlowDNSConfig
from repro.core.simulation import SimulationEngine
from repro.workloads.pcaplike import two_site_capture


def _run_scenario(same_ip: bool):
    capture = two_site_capture(same_ip=same_ip, seed=5, flows_per_site=50)
    recorder = ResultRecorder()
    engine = SimulationEngine(FlowDNSConfig(), on_result=recorder)
    engine.run(capture.dns_records, capture.flow_records)
    predicted = [r.service or "" for r in recorder.results]
    return capture, predicted


def test_scenario1_different_ips(benchmark):
    capture, predicted = benchmark.pedantic(
        _run_scenario, args=(False,), rounds=1, iterations=1
    )
    accuracy = capture.accuracy_of(predicted)
    print_rows(
        "Accuracy scenario 1 (different IPs)",
        [comparison_row("byte accuracy", 1.0, accuracy)],
    )
    assert accuracy == 1.0


def test_scenario2_same_ip(benchmark):
    capture, predicted = benchmark.pedantic(
        _run_scenario, args=(True,), rounds=1, iterations=1
    )
    accuracy = capture.accuracy_of(predicted)
    # All traffic is attributed to the *second* site (its record overwrote
    # the first), so measured accuracy is site B's byte share ≈ 50 %.
    attributed = set(predicted)
    print_rows(
        "Accuracy scenario 2 (same IP)",
        [
            comparison_row("byte accuracy", 0.5, accuracy),
            f"all traffic attributed to: {attributed}",
        ],
    )
    assert attributed == {capture.site_b}
    assert 0.35 < accuracy < 0.65
