"""Bounded-memory soak bench: churn throughput under the entry cap.

The operational question behind ``max_entries_per_map`` is what the cap
*costs*: every put over the cap pays an eviction sweep, so a store at
its bound runs the one-in-one-out trim on the hot fill path. This bench
drives the same endless CNAME-churn workload the tier-1 soak gate uses
(every step a fresh name -> fresh chain -> fresh IP) through a capped
and an uncapped :class:`ThreadedEngine` and records the fill throughput
of each plus the capped run's resident-entry ceiling, so the bench
artifact tracks both the eviction overhead and the memory bound across
PRs.
"""

import time

from repro.core.config import FlowDNSConfig
from repro.core.engine import ThreadedEngine
from repro.dns.rr import RRType
from repro.dns.stream import DnsRecord
from repro.util.benchio import record_bench

STEPS = 20_000
CAP = 500
NUM_SPLIT = 2
#: Same envelope arithmetic as the tier-1 soak gate: per-map cap x split
#: maps x three tiers (active/inactive/long) x two banks.
BOUND = CAP * NUM_SPLIT * 3 * 2


def _config(max_entries):
    return FlowDNSConfig(num_split=NUM_SPLIT, a_clear_up_interval=30.0,
                         c_clear_up_interval=30.0,
                         max_entries_per_map=max_entries)


def _churn_records(steps):
    for i in range(steps):
        ts = i * 0.01
        yield DnsRecord(ts, f"svc{i}.example", RRType.CNAME, 600,
                        f"edge{i}.cdn.net")
        yield DnsRecord(ts, f"edge{i}.cdn.net", RRType.A, 60,
                        f"10.{(i >> 16) & 255}.{(i >> 8) & 255}.{i & 255}")


def _run(max_entries):
    engine = ThreadedEngine(_config(max_entries))
    start = time.perf_counter()
    report = engine.run([_churn_records(STEPS)], [])
    elapsed = time.perf_counter() - start
    return report, (STEPS * 2) / elapsed


def test_capped_churn_stays_bounded_and_records_throughput():
    report, rate = _run(CAP)
    assert report.dns_records == STEPS * 2
    assert report.evictions > 0
    assert report.final_map_entries <= BOUND
    record_bench("soak_churn_capped_records_per_sec", round(rate, 1))
    record_bench("soak_final_map_entries", float(report.final_map_entries))
    record_bench("soak_evictions", float(report.evictions))
    print(f"\ncapped churn: {rate:,.0f} records/s, "
          f"{report.final_map_entries} resident (bound {BOUND}), "
          f"{report.evictions} evictions")


def test_uncapped_churn_baseline_throughput():
    report, rate = _run(0)
    assert report.dns_records == STEPS * 2
    assert report.evictions == 0
    assert report.final_map_entries > BOUND
    record_bench("soak_churn_uncapped_records_per_sec", round(rate, 1))
    print(f"\nuncapped churn: {rate:,.0f} records/s, "
          f"{report.final_map_entries} resident")
