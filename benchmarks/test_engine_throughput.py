"""Engine throughput: the honest Python-vs-Go gap.

The paper's Go implementation sustains ~1M Netflow records/s plus 75K
DNS records/s on 128 cores. This bench measures what the pure-Python
pipeline sustains (the reproduction band predicted exactly this gap) so
EXPERIMENTS.md can report it, and uses real pytest-benchmark timing.
"""

import pytest

from repro.core.config import FlowDNSConfig
from repro.core.fillup import FillUpProcessor
from repro.core.lookup import LookUpProcessor
from repro.core.simulation import SimulationEngine
from repro.core.storage_adapter import DnsStorage
from repro.dns.rr import RRType
from repro.dns.stream import DnsRecord
from repro.netflow.records import FlowRecord

N_RECORDS = 20_000


@pytest.fixture(scope="module")
def prepared_records():
    dns = [
        DnsRecord(float(i), f"svc{i % 500}.example", RRType.A, 300,
                  f"10.{(i % 500) // 250}.{(i % 250) + 1}.5")
        for i in range(N_RECORDS // 4)
    ]
    flows = [
        FlowRecord(ts=float(i), src_ip=f"10.{(i % 500) // 250}.{(i % 250) + 1}.5",
                   dst_ip="100.64.0.1", bytes_=1400)
        for i in range(N_RECORDS)
    ]
    return dns, flows


def test_fillup_throughput(benchmark, prepared_records):
    dns, _flows = prepared_records

    def fill():
        processor = FillUpProcessor(DnsStorage(FlowDNSConfig()))
        processor.process_many(dns)
        return processor.stats.records_stored

    stored = benchmark(fill)
    assert stored == len(dns)


def test_lookup_throughput(benchmark, prepared_records):
    dns, flows = prepared_records
    storage = DnsStorage(FlowDNSConfig())
    FillUpProcessor(storage).process_many(dns)

    def look():
        processor = LookUpProcessor(storage, FlowDNSConfig())
        for flow in flows:
            processor.process(flow)
        return processor.stats.matched

    matched = benchmark(look)
    assert matched == len(flows)


def test_simulation_engine_throughput(benchmark, prepared_records):
    dns, flows = prepared_records

    def run():
        engine = SimulationEngine(FlowDNSConfig(), sample_interval=1e9)
        return engine.run(list(dns), list(flows))

    report = benchmark.pedantic(run, rounds=3, iterations=1)
    assert report.flow_records == len(flows)
    # Document the gap: Python is orders of magnitude below 1M rec/s/core;
    # anything above 10K rec/s here confirms the pipeline is usable for
    # offline replay while the paper's rates need the Go implementation.
    events = len(dns) + len(flows)
    assert events / max(benchmark.stats["mean"], 1e-9) > 10_000
