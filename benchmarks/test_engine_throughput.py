"""Engine throughput: the honest Python-vs-Go gap.

The paper's Go implementation sustains ~1M Netflow records/s plus 75K
DNS records/s on 128 cores. This bench measures what the pure-Python
pipeline sustains (the reproduction band predicted exactly this gap) so
EXPERIMENTS.md can report it, and uses real pytest-benchmark timing.

Three pipeline shapes are compared on identical fixtures: the per-record
path (one call, one lock round-trip per record), the batched path
(``correlate_batch``/``process_batch``, the engines' fast path), and the
multiprocessing :class:`ShardedEngine`.
"""

import time

import pytest

from repro.core.config import FlowDNSConfig
from repro.core.fillup import FillUpProcessor
from repro.core.lookup import LookUpProcessor
from repro.core.sharded import ShardedEngine
from repro.core.simulation import SimulationEngine
from repro.core.storage_adapter import DnsStorage
from repro.dns.rr import RRType
from repro.dns.stream import DnsRecord
from repro.netflow.records import FlowRecord
from repro.util.benchio import record_bench

N_RECORDS = 20_000


@pytest.fixture(scope="module")
def prepared_records():
    dns = [
        DnsRecord(float(i), f"svc{i % 500}.example", RRType.A, 300,
                  f"10.{(i % 500) // 250}.{(i % 250) + 1}.5")
        for i in range(N_RECORDS // 4)
    ]
    flows = [
        FlowRecord(ts=float(i), src_ip=f"10.{(i % 500) // 250}.{(i % 250) + 1}.5",
                   dst_ip="100.64.0.1", bytes_=1400)
        for i in range(N_RECORDS)
    ]
    return dns, flows


def test_fillup_throughput(benchmark, prepared_records):
    dns, _flows = prepared_records

    def fill():
        processor = FillUpProcessor(DnsStorage(FlowDNSConfig()))
        processor.process_many(dns)
        return processor.stats.records_stored

    stored = benchmark(fill)
    assert stored == len(dns)


def test_lookup_throughput(benchmark, prepared_records):
    dns, flows = prepared_records
    storage = DnsStorage(FlowDNSConfig())
    FillUpProcessor(storage).process_many(dns)

    def look():
        processor = LookUpProcessor(storage, FlowDNSConfig())
        for flow in flows:
            processor.process(flow)
        return processor.stats.matched

    matched = benchmark(look)
    assert matched == len(flows)


def test_fillup_batched_throughput(benchmark, prepared_records):
    dns, _flows = prepared_records

    def fill():
        processor = FillUpProcessor(DnsStorage(FlowDNSConfig()))
        processor.process_batch(dns)
        return processor.stats.records_stored

    stored = benchmark(fill)
    assert stored == len(dns)


def test_lookup_batched_throughput(benchmark, prepared_records):
    dns, flows = prepared_records
    storage = DnsStorage(FlowDNSConfig())
    FillUpProcessor(storage).process_batch(dns)

    def look():
        processor = LookUpProcessor(storage, FlowDNSConfig())
        processor.correlate_batch(flows)
        return processor.stats.matched

    matched = benchmark(look)
    assert matched == len(flows)


def test_batched_beats_per_record(prepared_records):
    """Acceptance gate: the batched path must be ≥2× the per-record path.

    Measured directly (best of three) rather than via pytest-benchmark so
    the ratio survives ``--benchmark-disable`` smoke runs.
    """
    dns, flows = prepared_records
    storage = DnsStorage(FlowDNSConfig())
    FillUpProcessor(storage).process_batch(dns)

    # Best-of-5 against a >=2x bar with a ~5-10x measured margin, so a
    # noisy shared CI runner has to be wrong five times in a row to flake.
    def timed(fn, repeats=5):
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - start)
        return best

    def per_record():
        processor = LookUpProcessor(storage, FlowDNSConfig())
        for flow in flows:
            processor.process(flow)

    def batched():
        processor = LookUpProcessor(storage, FlowDNSConfig())
        processor.correlate_batch(flows)

    t_single = timed(per_record)
    t_batch = timed(batched)
    record_bench("engine_batched_speedup", round(t_single / t_batch, 2))
    record_bench("engine_batched_flows_per_sec", round(len(flows) / t_batch))
    assert t_single / t_batch >= 2.0, (
        f"batched path only {t_single / t_batch:.2f}x faster "
        f"({t_single:.3f}s vs {t_batch:.3f}s)"
    )


def test_sharded_engine_throughput(benchmark, prepared_records):
    """ShardedEngine over the same fixtures, with a merged-report check.

    On a single-core host the process fan-out cannot beat the in-process
    batched path; this documents the IPC overhead and guards correctness
    of the merged counters (same matched totals as the flat fixtures).
    """
    dns, flows = prepared_records

    def run():
        engine = ShardedEngine(FlowDNSConfig(), num_shards=2)
        return engine.run([dns], [flows], dns_first=True)

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    assert report.flow_records == len(flows)
    assert report.matched_flows == len(flows)
    assert report.dns_records == len(dns)


def test_simulation_engine_throughput(benchmark, prepared_records):
    dns, flows = prepared_records

    def run():
        engine = SimulationEngine(FlowDNSConfig(), sample_interval=1e9)
        return engine.run(list(dns), list(flows))

    report = benchmark.pedantic(run, rounds=3, iterations=1)
    assert report.flow_records == len(flows)
    # Document the gap: Python is orders of magnitude below 1M rec/s/core;
    # anything above 10K rec/s here confirms the pipeline is usable for
    # offline replay while the paper's rates need the Go implementation.
    # (stats is None under --benchmark-disable smoke runs.)
    if benchmark.stats is not None:
        events = len(dns) + len(flows)
        assert events / max(benchmark.stats["mean"], 1e-9) > 10_000
