"""Section 4 "Coverage": public-resolver share of DNS traffic.

Paper anchor: filtering one hour of Netflow to ports 53/853 and testing
against a public-resolver list, "1 out of every 20 DNS packets is sent
to a public DNS resolver. Therefore, the coverage of our DNS data is 95%."
"""

from conftest import print_rows

from repro.analysis import comparison_row, estimate_coverage
from repro.workloads.isp import large_isp


def test_coverage_95pct(benchmark):
    def analyze():
        workload = large_isp(seed=17, duration=3600.0)
        return estimate_coverage(workload.flow_records())

    report = benchmark.pedantic(analyze, rounds=1, iterations=1)
    rows = [
        comparison_row("public-resolver DNS share", 0.05, report.public_fraction),
        comparison_row("DNS data coverage", 0.95, report.coverage),
        f"DNS/DoT flows inspected: {report.dns_flows}",
    ]
    print_rows("Section 4: coverage via public resolvers", rows)

    assert report.dns_flows > 500
    assert abs(report.public_fraction - 0.05) < 0.02
    assert abs(report.coverage - 0.95) < 0.02
